"""Vector encodings for the Secure Join scheme (Sections 4.1-4.3).

The scheme operates on vectors of dimension ``m(t+1) + 3``::

    row    w = ( H(a0), g2*a1^0..g2*a1^t, ..., g2*am^0..g2*am^t, g1, 0 )
    token  v = ( k,     p_{1,0}..p_{1,t}, ..., p_{m,0}..p_{m,t}, 0,  d )

so that ``<v, w> = k*H(a0) + g2 * sum_i P_i(a_i)``, which collapses to
the query-keyed join handle ``k*H(a0)`` exactly when every selection
polynomial vanishes on the row's attribute values.

Attribute values are embedded into Z_q with a cryptographic hash
(the paper's injective-embedding assumption); the join value uses a
separate hash domain.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.polynomials import ZqPolynomial, power_vector
from repro.crypto.hashing import Value, hash_to_zq
from repro.errors import SchemeError

_JOIN_DOMAIN = b"repro.H.join"
_ATTR_DOMAIN = b"repro.H.attr"


def embed_join_value(value: Value, q: int) -> int:
    """The paper's ``H(.)`` on the join column."""
    return hash_to_zq(value, q, domain=_JOIN_DOMAIN)


def embed_attribute(value: Value, q: int) -> int:
    """Embed a non-join attribute value into Z_q."""
    return hash_to_zq(value, q, domain=_ATTR_DOMAIN)


@dataclass(frozen=True)
class VectorLayout:
    """The shared shape of row and token vectors.

    ``num_attributes`` is the paper's m (non-join attributes per table;
    shorter tables are padded) and ``degree`` is t, the largest
    supported IN clause.
    """

    num_attributes: int
    degree: int

    def __post_init__(self):
        if self.num_attributes < 1:
            raise SchemeError("need at least one non-join attribute")
        if self.degree < 1:
            raise SchemeError("the IN-clause bound t must be at least 1")

    @property
    def dimension(self) -> int:
        """``m(t+1) + 3``."""
        return self.num_attributes * (self.degree + 1) + 3

    # -- row side ----------------------------------------------------------
    def row_vector(
        self,
        join_value: Value,
        attribute_values: Sequence[Value],
        q: int,
        rng: random.Random,
    ) -> list[int]:
        """``w = (omega, gamma_1, 0)`` for one table row (SJ.Enc input).

        ``attribute_values`` shorter than m are padded with ``None``
        (their power blocks still carry the per-row blinding, so they
        reveal nothing and pair to zero with zero polynomials).
        """
        if len(attribute_values) > self.num_attributes:
            raise SchemeError(
                f"{len(attribute_values)} attributes exceed layout m="
                f"{self.num_attributes}"
            )
        gamma_1 = rng.randrange(q)
        gamma_2 = rng.randrange(1, q)
        vector = [embed_join_value(join_value, q)]
        padded = list(attribute_values) + [None] * (
            self.num_attributes - len(attribute_values)
        )
        for value in padded:
            embedded = embed_attribute(value, q)
            for p in power_vector(embedded, self.degree, q):
                vector.append(gamma_2 * p % q)
        vector.append(gamma_1)
        vector.append(0)
        return vector

    # -- token side ----------------------------------------------------------
    def selection_polynomials(
        self,
        selections: Mapping[int, Sequence[Value]],
        q: int,
        rng: random.Random,
    ) -> list[ZqPolynomial]:
        """One polynomial per attribute slot from IN clauses.

        ``selections`` maps attribute positions (0-based, non-join order)
        to the allowed values.  Unrestricted attributes get the zero
        polynomial, exactly as in Section 4.1.
        """
        polynomials = []
        for position in range(self.num_attributes):
            values = selections.get(position)
            if values is None:
                polynomials.append(ZqPolynomial.zero(self.degree + 1, q))
                continue
            if not values:
                raise SchemeError(
                    f"empty IN clause for attribute position {position}"
                )
            if len(values) > self.degree:
                raise SchemeError(
                    f"IN clause of size {len(values)} exceeds t={self.degree}"
                )
            roots = [embed_attribute(v, q) for v in values]
            polynomials.append(
                ZqPolynomial.from_roots(roots, self.degree, q, rng)
            )
        unknown = set(selections) - set(range(self.num_attributes))
        if unknown:
            raise SchemeError(
                f"selection on unknown attribute positions {sorted(unknown)}"
            )
        return polynomials

    def token_vector(
        self,
        query_key: int,
        polynomials: Sequence[ZqPolynomial],
        q: int,
        rng: random.Random,
    ) -> list[int]:
        """``v = (nu, 0, delta)`` for one table's join token (SJ.TokenGen)."""
        if len(polynomials) != self.num_attributes:
            raise SchemeError(
                f"need {self.num_attributes} polynomials, got {len(polynomials)}"
            )
        if query_key % q == 0:
            raise SchemeError("query key k must be non-zero modulo q")
        delta = rng.randrange(q)
        vector = [query_key % q]
        for polynomial in polynomials:
            vector.extend(polynomial.padded(self.degree + 1))
        vector.append(0)
        vector.append(delta)
        return vector
