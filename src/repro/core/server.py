"""The server side: storage, SJ.Dec, and the streaming join pipeline.

The server is the semi-honest adversary of the paper's model: it stores
encrypted tables, applies tokens to produce per-row handles (SJ.Dec) and
joins rows whose handles match (SJ.Match).  Everything it observes while
doing so is recorded in :attr:`SecureJoinServer.observations`, which is
exactly the adversary view the leakage analyzer consumes.

Since the pipeline refactor the two phases overlap: SJ.Dec emits
decrypted chunks through the execution engines' streams
(:mod:`repro.core.engine`) and the incremental matchers
(:mod:`repro.db.matcher`) pair them as they arrive, so
:meth:`SecureJoinServer.stream_join` surfaces the first matched rows
while most of the pairing work is still in flight.
:meth:`SecureJoinServer.execute_join` is the materializing wrapper and
returns exactly what the old decrypt-then-match pass did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.client import (
    EncryptedChainQuery,
    EncryptedJoinQuery,
    EncryptedTable,
)
from repro.core.engine import (
    AutoEngine,
    EngineReport,
    ExecutionEngine,
    HandleStream,
    get_engine,
)
from repro.core.pipeline import LEFT, RIGHT, run_pipeline
from repro.core.scheme import SecureJoinParams, SecureJoinScheme, SJToken
from repro.core.service import ExecutionService, QueryQoS
from repro.crypto.backend import BilinearBackend
from repro.db.matcher import IncrementalMatcher, get_matcher
from repro.errors import DeadlineError, QueryError, SchemeError
from repro.plan import (
    DEFAULT_HANDLE_STORE_BUDGET,
    MAX_CHAIN_TABLES,
    ChainExecutor,
    ChainSideSource,
    KeyedHandleStore,
    compile_plan,
    group_chain_sides,
    run_chain_pipeline,
)
from repro.series.cache import (
    DEFAULT_SERIES_BUDGET,
    ChainSeriesEntry,
    SeriesCache,
    SeriesEntry,
    chain_series_key,
    series_key,
)

#: Matcher algorithms ``execute_join`` accepts; ``"auto"`` prices hash
#: vs nested with the cost model (see :mod:`repro.bench.costmodel`).
MATCH_ALGORITHMS = ("hash", "nested", "auto")


@dataclass
class ServerStats:
    """Operation counts for one join execution.

    ``comparisons`` counts handle-equality work in the matcher: the
    nested-loop matcher compares every candidate pair (O(n·m)); the hash
    matcher performs one hash-key comparison per probe plus one equality
    confirmation per bucket entry it emits (O(n + m + output)).

    ``miller_loops`` / ``final_exponentiations`` record the pairing work
    of SJ.Dec as issued by the execution engine (see
    :mod:`repro.core.engine`); ``batches``, ``max_batch_size`` and
    ``workers`` describe how that work was grouped and fanned out.

    ``engine`` is the engine that ran the query; ``engine_source`` says
    who picked it (``"default"`` / ``"hint"`` / ``"override"``);
    ``engine_selected`` is what actually executed — it differs from
    ``engine`` only under the ``"auto"`` planner, whose per-side inputs
    and cost estimates land in ``planner`` (one dict per decrypted
    side, plus a ``stage: "match"`` record when the matcher was priced
    too).  ``matcher`` names the SJ.Match algorithm that ran.
    ``pool_generation`` / ``worker_restarts`` expose the persistent
    pool's lifecycle: the generation only moves when the pool is
    actually (re)created, so equal generations across queries prove
    worker reuse.

    Pipeline fields: ``time_to_first_match`` is the wall-clock from
    execution start to the first emitted pair (0.0 when the join is
    empty); ``decrypt_seconds`` / ``match_seconds`` split the pipeline
    wall-clock by stage (they overlap — that is the pipelining);
    ``concurrent_sides`` is the peak number of sides co-admitted on the
    worker pool while this query ran (>= 2 proves interleaving, 0 means
    the query never used the pool).

    Scatter-gather fields (set by the shard coordinator; 0 for a
    single-store join): ``shards`` is how many shards served the query
    and ``shard_skew`` the candidate-row imbalance across them (max
    over mean; 1.0 = perfectly uniform) — the quantity the planner's
    cross-shard pricing discounts the ideal ``1/n`` speedup by.

    Query-series fields: ``series_cache_hits`` is 1 when the query hit
    the server's cross-query cache (a warm replay or a delta refresh),
    ``reused_handles`` how many previously decrypted per-row handles it
    reused instead of re-running SJ.Dec, and ``delta_rows`` how many
    rows the refresh actually decrypted (0 on a pure replay).  For a
    cached query ``probes``/``comparisons`` report the retained
    matcher's cumulative work across the series, not one execution's.
    """

    candidates_left: int = 0
    candidates_right: int = 0
    decryptions: int = 0
    probes: int = 0
    comparisons: int = 0
    matches: int = 0
    engine: str = "batched"
    batches: int = 0
    max_batch_size: int = 0
    workers: int = 1
    miller_loops: int = 0
    final_exponentiations: int = 0
    prepared_miller_loops: int = 0
    preparations: int = 0
    engine_source: str = "default"
    engine_selected: str = ""
    planner: list | None = None
    pool_generation: int = 0
    worker_restarts: int = 0
    matcher: str = "hash"
    time_to_first_match: float = 0.0
    decrypt_seconds: float = 0.0
    match_seconds: float = 0.0
    concurrent_sides: int = 0
    shards: int = 0
    shard_skew: float = 0.0
    series_cache_hits: int = 0
    delta_rows: int = 0
    reused_handles: int = 0
    #: Multi-way plan fields (0 for a two-way join): ``plan_nodes`` is
    #: the number of left-deep nodes the planner laid out (chain arity
    #: minus one) and ``handle_pool_hits`` how many chain positions
    #: were served from another position's decrypt stream instead of
    #: opening their own (same table under byte-identical tokens).
    plan_nodes: int = 0
    handle_pool_hits: int = 0

    def merge_report(self, report: EngineReport) -> None:
        """Fold one side's engine report into the per-query totals."""
        self.engine = report.engine
        selected = report.selected or report.engine
        if not self.engine_selected:
            self.engine_selected = selected
        elif selected not in self.engine_selected.split("+"):
            self.engine_selected += f"+{selected}"
        self.batches += report.batches
        self.max_batch_size = max(self.max_batch_size, report.max_batch_size)
        self.workers = max(self.workers, report.workers)
        self.miller_loops += report.miller_loops
        self.final_exponentiations += report.final_exponentiations
        self.prepared_miller_loops += report.prepared_miller_loops
        self.preparations += report.preparations
        if report.planner is not None:
            if self.planner is None:
                self.planner = []
            self.planner.append(dict(report.planner))
        self.pool_generation = max(self.pool_generation, report.pool_generation)
        self.worker_restarts = max(self.worker_restarts, report.worker_restarts)
        self.concurrent_sides = max(
            self.concurrent_sides, report.concurrent_sides
        )


@dataclass
class EncryptedJoinResult:
    """What the server returns: matched payload pairs plus indices."""

    left_table: str
    right_table: str
    index_pairs: list[tuple[int, int]]
    left_payloads: list[bytes]
    right_payloads: list[bytes]
    stats: ServerStats


@dataclass
class MatchBatch:
    """One increment of a streamed join: pairs matched by one chunk.

    Yielded by :meth:`SecureJoinServer.stream_join` in discovery order
    (NOT the canonical order of the final result) together with the
    matched rows' payload blobs, so a client can decrypt joined rows
    while the server is still pairing.
    """

    index_pairs: list[tuple[int, int]]
    left_payloads: list[bytes]
    right_payloads: list[bytes]


@dataclass
class ChainMatchBatch:
    """One increment of a streamed multi-way chain join.

    ``tuples`` are completed chain tuples (one row index per chain
    position, positions in chain order) in discovery order; ``payloads``
    carries each tuple's payload blobs in the same position order.
    """

    tuples: list[tuple[int, ...]]
    payloads: list[tuple[bytes, ...]]


@dataclass
class EncryptedChainResult:
    """What the server returns for a multi-way chain join."""

    tables: tuple[str, ...]
    tuples: list[tuple[int, ...]]
    payloads: list[tuple[bytes, ...]]
    stats: ServerStats


@dataclass
class QueryObservation:
    """The adversary view of one query: every handle the server computed.

    ``handles`` maps ``(table_name, row_index)`` to the handle bytes.
    Equal bytes mean the server observed a true equality pair.
    """

    query_id: int
    handles: dict[tuple[str, int], bytes] = field(default_factory=dict)


class SecureJoinServer:
    """Stores encrypted tables and executes encrypted equi-joins."""

    def __init__(
        self,
        params: SecureJoinParams,
        backend: BilinearBackend | None = None,
        engine: ExecutionEngine | str | None = None,
        hint_engines: tuple[str, ...] = ("serial", "batched"),
        workers: int | None = None,
        series_cache_bytes: int | None = DEFAULT_SERIES_BUDGET,
        handle_store_bytes: int | None = DEFAULT_HANDLE_STORE_BUDGET,
    ):
        # The server only needs public parameters — never the master key.
        self.scheme = SecureJoinScheme(params, backend)
        # The server owns one persistent worker pool for its whole
        # lifetime; every pool-using engine it resolves is bound to it.
        # Construction is lazy — no process is forked until a query
        # actually fans out — and ``close()`` (or using the server as a
        # context manager) tears it down.  Concurrent queries (and the
        # two sides of one query) are co-admitted and interleave on it.
        self.execution_service = ExecutionService(workers=workers)
        # Default execution engine; per-query overrides and client hints
        # (see execute_join) take precedence.  ``hint_engines`` is the
        # allowlist of engines a client hint may select: hints are
        # advisory, and the resources they spend belong to the server,
        # so "parallel" (the worker pool) and "auto" (which may choose
        # it) require the operator to opt in here.  Disallowed hints
        # fall back to the default.
        self.engine = get_engine(engine, service=self.execution_service)
        self.hint_engines = frozenset(hint_engines)
        self._engine_cache: dict[str, ExecutionEngine] = {}
        self._tables: dict[str, EncryptedTable] = {}
        # Inverted index over pre-filter tags: table -> column -> tag -> rows.
        self._tag_index: dict[str, dict[str, dict[bytes, list[int]]]] = {}
        # Deleted row indices per table (tombstones).
        self._tombstones: dict[str, set[int]] = {}
        # Query-series maintenance state: per-table epochs (bumped when
        # a table is re-stored wholesale — retained state is garbage)
        # and versions (bumped per insert/delete — retained state is
        # stale but delta-repairable), plus the cross-query cache
        # itself.  ``series_cache_bytes`` is the memory budget knob;
        # None or 0 disables series caching entirely.
        self._epochs: dict[str, int] = {}
        self._versions: dict[str, int] = {}
        self.series_cache: SeriesCache | None = (
            SeriesCache(series_cache_bytes)
            if series_cache_bytes
            else None
        )
        # The cross-series handle store (see :mod:`repro.plan.handles`):
        # far lighter per query than a series entry, so decrypted
        # handles outlive their evicted series entries and a cold
        # series over a warm table reuses them.  ``handle_store_bytes``
        # is its own budget knob; None or 0 disables it.
        self.handle_store: KeyedHandleStore | None = (
            KeyedHandleStore(handle_store_bytes)
            if handle_store_bytes
            else None
        )
        self.observations: list[QueryObservation] = []

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut down the server's worker pool.  Idempotent."""
        self.execution_service.close()

    def __enter__(self) -> "SecureJoinServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _resolve_engine(self, engine: ExecutionEngine | str) -> ExecutionEngine:
        """An engine bound to this server's pool; named engines are cached
        so repeated ``engine="parallel"`` calls reuse one instance (and
        therefore one warm pool) instead of re-instantiating per query."""
        if isinstance(engine, ExecutionEngine):
            return get_engine(engine, service=self.execution_service)
        cached = self._engine_cache.get(engine)
        if cached is None:
            cached = get_engine(engine, service=self.execution_service)
            self._engine_cache[engine] = cached
        return cached

    # -- storage ------------------------------------------------------------
    def store(self, encrypted_table: EncryptedTable) -> None:
        self._tables[encrypted_table.name] = encrypted_table
        index: dict[str, dict[bytes, list[int]]] = {}
        if encrypted_table.prefilter_tags:
            for column, tags in encrypted_table.prefilter_tags.items():
                postings: dict[bytes, list[int]] = {}
                for row_index, tag in enumerate(tags):
                    postings.setdefault(tag, []).append(row_index)
                index[column] = postings
        self._tag_index[encrypted_table.name] = index
        # Re-storing replaces the table wholesale: a new epoch makes
        # every retained series entry for it unreachable, and the
        # mutation counter restarts with the new contents.
        name = encrypted_table.name
        self._epochs[name] = self._epochs.get(name, 0) + 1
        self._versions[name] = 0
        if self.series_cache is not None:
            self.series_cache.invalidate_table(name)
        if self.handle_store is not None:
            self.handle_store.invalidate_table(name)

    def table_epoch(self, name: str) -> int:
        """The table's store generation (0 = never stored)."""
        return self._epochs.get(name, 0)

    def table_version(self, name: str) -> int:
        """The table's mutation counter within its current epoch."""
        return self._versions.get(name, 0)

    def table(self, name: str) -> EncryptedTable:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"server has no table {name!r}") from None

    def prepare_table(self, name: str) -> int:
        """Precompute pairing coefficients for every row of a table.

        After this, every query over the table replays stored line
        coefficients instead of running full Miller loops (the
        prepared-rows optimization — the precomputation depends only on
        the stored ciphertext, never on the query token).  Idempotent;
        returns the number of rows prepared by *this* call.
        """
        table = self.table(name)
        backend = self.scheme.backend
        if table.prepared_rows is None:
            table.prepared_rows = []
        prepared = 0
        for ciphertext in table.ciphertexts[len(table.prepared_rows):]:
            table.prepared_rows.append(
                backend.prepare_row(ciphertext.elements)
            )
            prepared += 1
        return prepared

    # -- dynamic updates --------------------------------------------------
    def insert_row(
        self,
        table_name: str,
        ciphertext,
        payload: bytes,
        prefilter_tags: dict[str, bytes] | None = None,
    ) -> int:
        """Append one client-encrypted row; returns its row index.

        The scheme is row-wise, so inserts are O(1): no existing
        ciphertext is touched and future queries cover the new row
        automatically.
        """
        table = self.table(table_name)
        index = len(table.ciphertexts)
        table.ciphertexts.append(ciphertext)
        table.payloads.append(payload)
        if table.prepared_rows is not None:
            # Keep a prepared table warm: the new row gets its
            # coefficients now, so future queries stay all-prepared.
            table.prepared_rows.append(
                self.scheme.backend.prepare_row(ciphertext.elements)
            )
        if table.prefilter_tags is not None:
            if prefilter_tags is None or set(prefilter_tags) != set(
                table.prefilter_tags
            ):
                raise QueryError(
                    "insert into a pre-filtered table must carry tags for "
                    f"exactly the columns {sorted(table.prefilter_tags)}"
                )
            for column, tag in prefilter_tags.items():
                table.prefilter_tags[column].append(tag)
                self._tag_index[table_name][column].setdefault(
                    tag, []
                ).append(index)
        self._versions[table_name] = self._versions.get(table_name, 0) + 1
        return index

    def delete_rows(self, table_name: str, indices: list[int]) -> None:
        """Tombstone rows: they stop participating in every future query."""
        table = self.table(table_name)
        tombstones = self._tombstones.setdefault(table_name, set())
        for index in indices:
            if not 0 <= index < len(table.ciphertexts):
                raise QueryError(
                    f"row index {index} out of range for {table_name!r}"
                )
            tombstones.add(index)
        if indices:
            self._versions[table_name] = (
                self._versions.get(table_name, 0) + 1
            )
            if self.handle_store is not None:
                self.handle_store.forget_rows(table_name, indices)

    def tombstoned_rows(self, table_name: str) -> frozenset[int]:
        """The table's deleted row indices (delta-maintenance input)."""
        return frozenset(self._tombstones.get(table_name, ()))

    def _live(self, table_name: str, indices: list[int]) -> list[int]:
        tombstones = self._tombstones.get(table_name)
        if not tombstones:
            return indices
        return [i for i in indices if i not in tombstones]

    # -- query execution ------------------------------------------------------
    def _candidates(
        self,
        table: EncryptedTable,
        prefilter: dict[str, frozenset[bytes]] | None,
    ) -> list[int]:
        """Row indices surviving the (optional) searchable pre-filter."""
        if not prefilter:
            return list(range(len(table)))
        if table.prefilter_tags is None:
            raise QueryError(
                f"query carries pre-filter tokens but table {table.name!r} "
                "was encrypted without pre-filter tags"
            )
        index = self._tag_index[table.name]
        survivors: set[int] | None = None
        for column, allowed in prefilter.items():
            postings = index.get(column)
            if postings is None:
                raise QueryError(
                    f"no pre-filter tags for column {column!r} in "
                    f"table {table.name!r}"
                )
            matching: set[int] = set()
            for tag in allowed:
                matching.update(postings.get(tag, ()))
            survivors = matching if survivors is None else survivors & matching
            if not survivors:
                return []
        return sorted(survivors)

    def _side_ciphertexts(
        self,
        table: EncryptedTable,
        token: SJToken,
        candidates: list[int],
    ) -> list:
        """The candidate rows' ciphertext vectors, validated for SJ.Dec."""
        dimension = self.scheme.params.dimension
        if len(token) != dimension:
            raise SchemeError(
                f"token dimension {len(token)} != scheme dimension {dimension}"
            )
        prepared = table.prepared_rows
        ciphertexts = []
        for index in candidates:
            ciphertext = table.ciphertexts[index]
            if len(ciphertext) != dimension:
                raise SchemeError(
                    f"ciphertext dimension {len(ciphertext)} != scheme "
                    f"dimension {dimension}"
                )
            if prepared is not None and index < len(prepared):
                ciphertexts.append(prepared[index])
            else:
                ciphertexts.append(ciphertext.elements)
        return ciphertexts

    def _distinct_estimate(
        self, table_name: str, candidate_count: int
    ) -> int | None:
        """Estimated distinct join values among a side's candidates.

        Derived from the pre-filter posting profile: the most selective
        indexed column's distinct-tag count, scaled to the candidate
        set under a uniformity assumption.  The tags live on attribute
        columns, not the join column, so this is a diversity proxy —
        good enough to separate a near-key side from a heavily repeated
        one, which is all the containment estimator needs.  ``None``
        when the table carries no tags (assume all-distinct).
        """
        index = self._tag_index.get(table_name)
        if not index:
            return None
        table_rows = len(self.table(table_name))
        if table_rows == 0 or candidate_count == 0:
            return None
        best = max(len(postings) for postings in index.values())
        return max(
            1,
            min(candidate_count, round(candidate_count * best / table_rows)),
        )

    def _select_matcher(
        self,
        algorithm: str,
        stats: ServerStats,
        build_rows: int,
        probe_rows: int,
        active_engine: ExecutionEngine | None = None,
        build_distinct: int | None = None,
        probe_distinct: int | None = None,
    ) -> IncrementalMatcher:
        """Resolve the SJ.Match algorithm; ``"auto"`` prices the stage.

        The pricing satellite of the planner: hash vs nested estimated
        with the same cost model the engine planner uses — including a
        calibrated/custom model configured on an ``auto`` engine —
        recorded as a ``stage: "match"`` entry in ``stats.planner`` so
        the full pipeline decision is auditable.  The per-side distinct
        estimates feed the expected-output term of the pricing (the
        same posting-profile estimator the multi-way planner uses).
        """
        if algorithm == "auto":
            from repro.bench.costmodel import (
                choose_matcher,
                default_engine_cost_model,
                estimate_expected_matches,
            )

            model = getattr(active_engine, "cost_model", None)
            if model is None:
                model = default_engine_cost_model(self.scheme.backend.name)
            expected = estimate_expected_matches(
                build_rows, probe_rows, build_distinct, probe_distinct
            )
            chosen, estimates = choose_matcher(
                model,
                build_rows=build_rows,
                probe_rows=probe_rows,
                expected_matches=expected,
            )
            if stats.planner is None:
                stats.planner = []
            stats.planner.append({
                "stage": "match",
                "build_rows": build_rows,
                "probe_rows": probe_rows,
                "expected_matches": expected,
                "chosen": chosen,
                "estimates": {
                    name: float(sec) for name, sec in estimates.items()
                },
            })
        else:
            chosen = algorithm
        stats.matcher = chosen
        return get_matcher(chosen)

    def open_side_stream(
        self,
        table_name: str,
        token: SJToken,
        prefilter: dict[str, frozenset[bytes]] | None = None,
        qos: QueryQoS | None = None,
        engine: ExecutionEngine | str | None = None,
        exclude_rows: set[int] | None = None,
    ) -> tuple[list[int], HandleStream]:
        """Open one side's decrypt stream: ``(candidates, stream)``.

        The scatter building block: pre-filter and tombstones applied,
        then SJ.Dec streamed through the resolved engine (bound to
        *this* server's pool).  A shard coordinator opens one such
        stream per shard per side and merges the chunks into a single
        matcher — the caller owns the stream and must close it.
        ``exclude_rows`` drops already-decrypted rows from the stream
        (the delta-scatter path: a coordinator with retained handles
        asks each shard for only what it has not seen).
        """
        table = self.table(table_name)
        candidates = self._live(
            table.name, self._candidates(table, prefilter)
        )
        if exclude_rows:
            candidates = [i for i in candidates if i not in exclude_rows]
        active_engine = (
            self._resolve_engine(engine) if engine is not None else self.engine
        )
        stream = active_engine.decrypt_stream(
            self.scheme.backend,
            token.elements,
            self._side_ciphertexts(table, token, candidates),
            qos=qos,
        )
        return candidates, stream

    def stream_join(
        self,
        query: EncryptedJoinQuery,
        algorithm: str = "hash",
        engine: ExecutionEngine | str | None = None,
    ):
        """Run the join as a streaming pipeline; a generator.

        Yields :class:`MatchBatch` increments (pairs in discovery
        order, with payloads) as soon as decrypted chunks complete the
        pairings, and returns the final :class:`EncryptedJoinResult` —
        canonical right-major order, byte-identical to the materialized
        pass — as the generator's value (``StopIteration.value``).

        ``algorithm`` selects the matcher: ``"hash"`` (the paper's
        expected-O(n) hash join), ``"nested"`` (the O(n^2) loop kept
        for ablations) or ``"auto"`` (cost-model priced).

        ``engine`` selects the SJ.Dec execution engine for this query
        (``"serial"``, ``"batched"``, ``"parallel"``, ``"auto"`` or an
        :class:`~repro.core.engine.ExecutionEngine` instance); when
        omitted, the query's client hint applies if the server's
        ``hint_engines`` allowlist permits it, then the server default.
        Pool-using engines admit their sides to the server's persistent
        ``execution_service``, where concurrent queries interleave.
        """
        left = self.table(query.left_table)
        right = self.table(query.right_table)
        events = self._pipeline_events(query, algorithm, engine)
        try:
            while True:
                try:
                    new_pairs = next(events)
                except StopIteration as stop:
                    return stop.value
                yield MatchBatch(
                    index_pairs=list(new_pairs),
                    left_payloads=[left.payloads[i] for i, _ in new_pairs],
                    right_payloads=[right.payloads[j] for _, j in new_pairs],
                )
        finally:
            # Deterministic on abandonment too (not just refcount GC):
            # closing the inner drive releases pool admissions and
            # records the adversary observation.
            events.close()

    def _pipeline_events(
        self,
        query: EncryptedJoinQuery,
        algorithm: str,
        engine: ExecutionEngine | str | None,
    ):
        """The pipeline drive shared by :meth:`stream_join` (which wraps
        the emitted pair lists in payload-carrying batches) and
        :meth:`execute_join` (which discards them — no point building
        per-batch payload lists nobody reads).  Yields raw new-pair
        lists; returns the final :class:`EncryptedJoinResult`."""
        if algorithm not in MATCH_ALGORITHMS:
            raise QueryError(f"unknown join algorithm {algorithm!r}")
        if engine is not None:
            active_engine = self._resolve_engine(engine)
            engine_source = "override"
        elif (
            query.engine_hint is not None
            and query.engine_hint in self.hint_engines
        ):
            active_engine = self._resolve_engine(query.engine_hint)
            engine_source = "hint"
        else:
            active_engine = self.engine
            engine_source = "default"
        left = self.table(query.left_table)
        right = self.table(query.right_table)
        stats = ServerStats(engine_source=engine_source)
        observation = QueryObservation(query.query_id)
        # The query's scheduling QoS (wire v4): the relative deadline is
        # stamped against the server's clock here, at admission.
        # Pooled engines thread it into the admission scheduler
        # (priority-preferring dispatch, mid-flight cancellation);
        # inline engines check it between chunks; the drive loop below
        # checks it between pipeline events so the match stage cannot
        # overrun either.
        priority = getattr(query, "priority", 0) or 0
        relative_deadline = getattr(query, "deadline", None)
        qos: QueryQoS | None = None
        if priority or relative_deadline is not None:
            qos = QueryQoS(
                priority=priority,
                deadline=(
                    time.monotonic() + relative_deadline
                    if relative_deadline is not None
                    else None
                ),
            )

        backend = self.scheme.backend
        cache = self.series_cache
        # A concrete per-call engine override ("serial", an instance,
        # ...) is an instruction to *execute* SJ.Dec that way — an
        # ablation or accounting run — so it bypasses replay; ``None``
        # and ``"auto"`` ask for the cheapest correct plan, which the
        # cache is.  Either way the finished run (re)seeds the entry.
        replay_eligible = (
            engine is None
            or engine == "auto"
            or isinstance(engine, AutoEngine)
        )
        key = b""
        if cache is not None:
            # A literally re-submitted query (same token bytes) hits the
            # series cache; lookup drops entries from a replaced epoch.
            key = series_key(query, backend)
        if cache is not None and replay_eligible:
            epochs = (
                self.table_epoch(left.name),
                self.table_epoch(right.name),
            )
            entry = cache.lookup(key, epochs)
            if entry is not None and algorithm not in (
                "auto",
                entry.matcher_name,
            ):
                # An explicit matcher request (an ablation run) must
                # actually exercise that matcher: disregard the entry
                # and let the from-scratch pass replace it.
                entry = None
            if entry is not None:
                versions = (
                    self.table_version(left.name),
                    self.table_version(right.name),
                )
                # Per-entry admission is non-blocking: a series whose
                # entry is mid-replay/refresh on another thread must
                # not starve this query (nor unrelated ones), so on
                # contention we fall through to the miss path and
                # recompute from scratch — correct, just not cheap.
                if entry.lock.acquire(blocking=False):
                    try:
                        if entry.versions == versions:
                            return (
                                yield from self._series_replay_events(
                                    entry, query, left, right, stats
                                )
                            )
                        return (
                            yield from self._series_delta_events(
                                entry,
                                query,
                                left,
                                right,
                                stats,
                                qos,
                                active_engine,
                                versions,
                            )
                        )
                    finally:
                        entry.lock.release()
                cache.stats.lock_contention += 1
        # Miss path: capture the maintenance state *before* computing
        # candidates, so a concurrent mutation lands after our snapshot
        # and shows up as a version mismatch on the next lookup.
        if cache is not None:
            miss_epochs = (
                self.table_epoch(left.name),
                self.table_epoch(right.name),
            )
            miss_versions = (
                self.table_version(left.name),
                self.table_version(right.name),
            )
            miss_tombstones = {
                LEFT: set(self._tombstones.get(left.name, ())),
                RIGHT: set(self._tombstones.get(right.name, ())),
            }

        left_candidates = self._live(
            left.name, self._candidates(left, query.left_prefilter)
        )
        right_candidates = self._live(
            right.name, self._candidates(right, query.right_prefilter)
        )
        stats.candidates_left = len(left_candidates)
        stats.candidates_right = len(right_candidates)
        matcher = self._select_matcher(
            algorithm, stats, len(left_candidates), len(right_candidates),
            active_engine,
            build_distinct=self._distinct_estimate(
                left.name, len(left_candidates)
            ),
            probe_distinct=self._distinct_estimate(
                right.name, len(right_candidates)
            ),
        )
        left_stream: HandleStream | None = None
        right_stream: HandleStream | None = None
        try:
            # Opening both streams before pulling either is what admits
            # both sides to the pool together: the service interleaves
            # their chunk scheduling from the first window fill.
            left_stream = active_engine.decrypt_stream(
                backend,
                query.left_token.elements,
                self._side_ciphertexts(left, query.left_token, left_candidates),
                qos=qos,
            )
            right_stream = active_engine.decrypt_stream(
                backend,
                query.right_token.elements,
                self._side_ciphertexts(
                    right, query.right_token, right_candidates
                ),
                qos=qos,
            )
        except BaseException:
            if left_stream is not None:
                left_stream.close()
            if right_stream is not None:
                right_stream.close()
            raise
        stats.decryptions += len(left_candidates) + len(right_candidates)

        sides = {"left": left.name, "right": right.name}
        # Per-side handle maps retained for the series cache.  Recorded
        # separately from the observation (which keys by table name and
        # would collide the two sides of a self-join).
        retained: dict[str, dict[int, bytes]] | None = (
            {LEFT: {}, RIGHT: {}} if cache is not None else None
        )

        def record_handles(side: str, items: list) -> None:
            table_name = sides[side]
            for row_index, handle in items:
                observation.handles[(table_name, row_index)] = handle
            if retained is not None:
                side_handles = retained[side]
                for row_index, handle in items:
                    side_handles[row_index] = handle

        pipeline = run_pipeline(
            left_stream,
            right_stream,
            left_candidates,
            right_candidates,
            matcher,
            on_handles=record_handles,
        )
        try:
            # Driven manually (not ``yield from``) so the deadline is
            # re-checked between pipeline events: the decrypt engines
            # enforce it between chunks, but a long match stage must
            # not overrun it either.
            while True:
                try:
                    new_pairs = next(pipeline)
                except StopIteration as stop:
                    outcome = stop.value
                    break
                if qos is not None and qos.expired():
                    raise DeadlineError(
                        f"query {query.query_id} exceeded its deadline "
                        f"of {relative_deadline}s; cancelled mid-join"
                    )
                yield new_pairs
        finally:
            # Deterministic cleanup when the consumer abandons the
            # generator: closing the pipeline closes both handle
            # streams, releasing any pool admissions.  The adversary
            # view is recorded even then — the server *did* compute
            # those handles, and the leakage analyzer must see them.
            pipeline.close()
            self.observations.append(observation)

        stats.merge_report(outcome.left_report)
        stats.merge_report(outcome.right_report)
        pairs = outcome.pairs
        stats.matches = len(pairs)
        stats.probes = matcher.stats.probes
        stats.comparisons = matcher.stats.comparisons
        stats.time_to_first_match = outcome.timings.time_to_first_match
        stats.decrypt_seconds = outcome.timings.decrypt_seconds
        stats.match_seconds = outcome.timings.match_seconds
        if cache is not None:
            # Seed the series: retain the handle maps and the live
            # matcher so a re-submitted query replays and a mutated one
            # refreshes by delta.  Tombstones excluded by this pass are
            # recorded as already applied.
            entry = SeriesEntry(
                key,
                left.name,
                right.name,
                miss_epochs,
                miss_versions,
                matcher,
                stats.matcher,
            )
            entry.handles = retained
            entry.applied_tombstones = miss_tombstones
            cache.store(entry)
        return EncryptedJoinResult(
            left_table=left.name,
            right_table=right.name,
            index_pairs=pairs,
            left_payloads=[left.payloads[i] for i, _ in pairs],
            right_payloads=[right.payloads[j] for _, j in pairs],
            stats=stats,
        )

    def _series_replay_events(
        self,
        entry: SeriesEntry,
        query: EncryptedJoinQuery,
        left: EncryptedTable,
        right: EncryptedTable,
        stats: ServerStats,
    ):
        """Warm replay: the cached canonical result, zero pairing work.

        No decrypt stream is opened, so not a single Miller loop runs;
        the retained matcher re-sorts its pairs and that *is* the
        result.  The adversary observation records the *reused* handles
        — nothing new is revealed, but the per-query view still
        determines the result (what the leakage analyzer relies on).
        """
        observation = QueryObservation(query.query_id)
        sides = {LEFT: left.name, RIGHT: right.name}
        for side, table_name in sides.items():
            for row_index, handle in entry.handles[side].items():
                observation.handles[(table_name, row_index)] = handle
        self.observations.append(observation)
        pairs = entry.matcher.finish()
        entry.replays += 1
        if self.series_cache is not None:
            self.series_cache.stats.replays += 1
        stats.series_cache_hits = 1
        stats.reused_handles = entry.reused_handles()
        stats.matches = len(pairs)
        stats.probes = entry.matcher.stats.probes
        stats.comparisons = entry.matcher.stats.comparisons
        stats.matcher = entry.matcher_name
        stats.engine = "series"
        stats.engine_selected = "series"
        stats.candidates_left = len(entry.handles[LEFT])
        stats.candidates_right = len(entry.handles[RIGHT])
        stats.planner = [
            {
                "stage": "series",
                "outcome": "replay",
                "reused_handles": stats.reused_handles,
                "pairs": len(pairs),
            }
        ]
        if pairs:
            yield list(pairs)
        return EncryptedJoinResult(
            left_table=left.name,
            right_table=right.name,
            index_pairs=pairs,
            left_payloads=[left.payloads[i] for i, _ in pairs],
            right_payloads=[right.payloads[j] for _, j in pairs],
            stats=stats,
        )

    def _series_delta_events(
        self,
        entry: SeriesEntry,
        query: EncryptedJoinQuery,
        left: EncryptedTable,
        right: EncryptedTable,
        stats: ServerStats,
        qos: QueryQoS | None,
        active_engine: ExecutionEngine,
        versions: tuple[int, int],
    ):
        """Delta refresh: SJ.Dec only what the entry has never seen.

        Tombstones accrued since the last refresh are withdrawn from
        the retained matcher *first* (so dead rows cannot pair with new
        arrivals), then only the never-fed live candidate rows are
        decrypted and fed in.  ``matcher.finish()`` then yields the
        full canonical result — retained pairs plus the delta's.
        """
        cache = self.series_cache
        matcher = entry.matcher
        for side, table in ((LEFT, left), (RIGHT, right)):
            current = set(self._tombstones.get(table.name, ()))
            new = current - entry.applied_tombstones[side]
            doomed = [i for i in new if i in entry.handles[side]]
            if doomed:
                if side == LEFT:
                    matcher.retract_left(doomed)
                else:
                    matcher.retract_right(doomed)
                for i in doomed:
                    del entry.handles[side][i]
            entry.applied_tombstones[side] |= new
        stats.series_cache_hits = 1
        stats.reused_handles = entry.reused_handles()
        stats.matcher = entry.matcher_name

        left_candidates = self._live(
            left.name, self._candidates(left, query.left_prefilter)
        )
        right_candidates = self._live(
            right.name, self._candidates(right, query.right_prefilter)
        )
        stats.candidates_left = len(left_candidates)
        stats.candidates_right = len(right_candidates)
        # Rows that ever entered the handle map passed the pre-filter,
        # and tags are immutable, so set difference against the handle
        # map is exactly "inserted since the last refresh".
        left_delta = [
            i for i in left_candidates if i not in entry.handles[LEFT]
        ]
        right_delta = [
            i for i in right_candidates if i not in entry.handles[RIGHT]
        ]
        delta_rows = len(left_delta) + len(right_delta)
        stats.delta_rows = delta_rows

        # Price the refresh: a 3-row delta must not wake the pool, so
        # under the auto planner the delta cost model (serial-favoring
        # dispatch surcharge) picks the engine for this pass.
        chosen_engine = active_engine
        if isinstance(active_engine, AutoEngine):
            from repro.bench.costmodel import (
                choose_delta_engine,
                default_engine_cost_model,
            )

            model = active_engine.cost_model
            if model is None:
                model = default_engine_cost_model(self.scheme.backend.name)
            pool_started, workers = self.execution_service.warmth()
            prepared_sides = [
                table.prepared_rows is not None
                for table, delta in ((left, left_delta), (right, right_delta))
                if delta
            ]
            choice, estimates = choose_delta_engine(
                model,
                rows=delta_rows,
                dimension=self.scheme.params.dimension,
                workers=workers,
                batch_size=active_engine.batch_size,
                parallel_batch_size=max(1, active_engine.batch_size // 2),
                pool_warm=pool_started,
                allowed=active_engine.candidates,
                prepared=bool(prepared_sides) and all(prepared_sides),
            )
            chosen_engine = self._resolve_engine(choice)
            if stats.planner is None:
                stats.planner = []
            stats.planner.append({
                "stage": "delta",
                "rows": delta_rows,
                "chosen": choice,
                "estimates": {
                    name: float(sec) for name, sec in estimates.items()
                },
            })

        # Stream the retained pairs first so the union of yielded
        # batches still equals the final result, then the delta's new
        # pairs as they are discovered.
        retained_pairs = matcher.finish()
        if retained_pairs:
            yield list(retained_pairs)

        observation = QueryObservation(query.query_id)
        backend = self.scheme.backend
        left_stream: HandleStream | None = None
        right_stream: HandleStream | None = None
        try:
            left_stream = chosen_engine.decrypt_stream(
                backend,
                query.left_token.elements,
                self._side_ciphertexts(left, query.left_token, left_delta),
                qos=qos,
            )
            right_stream = chosen_engine.decrypt_stream(
                backend,
                query.right_token.elements,
                self._side_ciphertexts(right, query.right_token, right_delta),
                qos=qos,
            )
        except BaseException:
            if left_stream is not None:
                left_stream.close()
            if right_stream is not None:
                right_stream.close()
            raise
        stats.decryptions += delta_rows

        sides = {LEFT: left.name, RIGHT: right.name}
        # The view starts from the reused handles; the delta's newly
        # computed ones accrue below — together they determine the
        # refreshed result, which is what the leakage analyzer checks.
        for side, table_name in sides.items():
            for row_index, handle in entry.handles[side].items():
                observation.handles[(table_name, row_index)] = handle

        def record_handles(side: str, items: list) -> None:
            table_name = sides[side]
            side_handles = entry.handles[side]
            for row_index, handle in items:
                observation.handles[(table_name, row_index)] = handle
                side_handles[row_index] = handle

        pipeline = run_pipeline(
            left_stream,
            right_stream,
            left_delta,
            right_delta,
            matcher,
            on_handles=record_handles,
        )
        try:
            while True:
                try:
                    new_pairs = next(pipeline)
                except StopIteration as stop:
                    outcome = stop.value
                    break
                if qos is not None and qos.expired():
                    raise DeadlineError(
                        f"query {query.query_id} exceeded its deadline; "
                        "cancelled mid-refresh"
                    )
                yield new_pairs
        finally:
            pipeline.close()
            self.observations.append(observation)

        stats.merge_report(outcome.left_report)
        stats.merge_report(outcome.right_report)
        pairs = outcome.pairs
        stats.matches = len(pairs)
        stats.probes = matcher.stats.probes
        stats.comparisons = matcher.stats.comparisons
        stats.time_to_first_match = outcome.timings.time_to_first_match
        stats.decrypt_seconds = outcome.timings.decrypt_seconds
        stats.match_seconds = outcome.timings.match_seconds
        entry.versions = versions
        entry.delta_refreshes += 1
        if cache is not None:
            cache.stats.delta_refreshes += 1
            cache.reaccount(entry)
        return EncryptedJoinResult(
            left_table=left.name,
            right_table=right.name,
            index_pairs=pairs,
            left_payloads=[left.payloads[i] for i, _ in pairs],
            right_payloads=[right.payloads[j] for _, j in pairs],
            stats=stats,
        )

    # -- multi-way chains --------------------------------------------------
    def _chain_payloads(
        self, tables: list[EncryptedTable], tuples
    ) -> list[tuple[bytes, ...]]:
        return [
            tuple(
                tables[position].payloads[row]
                for position, row in enumerate(combo)
            )
            for combo in tuples
        ]

    def stream_chain(
        self,
        query: EncryptedChainQuery,
        engine: ExecutionEngine | str | None = None,
    ):
        """Run a multi-way chain join as a streaming pipeline; a generator.

        Yields :class:`ChainMatchBatch` increments (completed chain
        tuples in discovery order, with payloads) as the left-deep
        pipeline completes them, and returns the final
        :class:`EncryptedChainResult` — canonical lexicographic tuple
        order — as the generator's value (``StopIteration.value``).

        The join order is chosen per query by the cost-model planner
        from prefilter-posting cardinality estimates; matching is
        always hash-based (one incremental matcher per plan node).
        """
        tables = [self.table(name) for name in query.tables]
        events = self._chain_events(query, engine)
        try:
            while True:
                try:
                    new_tuples = next(events)
                except StopIteration as stop:
                    return stop.value
                yield ChainMatchBatch(
                    tuples=list(new_tuples),
                    payloads=self._chain_payloads(tables, new_tuples),
                )
        finally:
            events.close()

    def execute_chain(
        self,
        query: EncryptedChainQuery,
        engine: ExecutionEngine | str | None = None,
    ) -> EncryptedChainResult:
        """Materializing wrapper around :meth:`stream_chain`."""
        events = self._chain_events(query, engine)
        while True:
            try:
                next(events)
            except StopIteration as stop:
                return stop.value

    def _chain_events(
        self,
        query: EncryptedChainQuery,
        engine: ExecutionEngine | str | None,
    ):
        """The chain pipeline drive: yields raw completed-tuple lists,
        returns the final :class:`EncryptedChainResult`.

        The flow mirrors :meth:`_pipeline_events` with three additions:
        the **planner** compiles the chain into a costed left-deep
        order, the per-query **handle pool** opens one decrypt stream
        per distinct (table, token) side (``stats.handle_pool_hits``),
        and the cross-series **handle store** pre-feeds retained
        handles so a cold series over a warm table skips their SJ.Dec
        entirely (counted in ``stats.reused_handles``).
        """
        n = len(query.tables)
        if not 2 <= n <= MAX_CHAIN_TABLES:
            raise QueryError(
                f"a chain query needs 2..{MAX_CHAIN_TABLES} tables, got {n}"
            )
        if len(query.tokens) != n or len(query.prefilters) != n:
            raise QueryError(
                "chain query tables, tokens and prefilters must align"
            )
        if engine is not None:
            active_engine = self._resolve_engine(engine)
            engine_source = "override"
        elif (
            query.engine_hint is not None
            and query.engine_hint in self.hint_engines
        ):
            active_engine = self._resolve_engine(query.engine_hint)
            engine_source = "hint"
        else:
            active_engine = self.engine
            engine_source = "default"
        tables = [self.table(name) for name in query.tables]
        stats = ServerStats(engine_source=engine_source)
        observation = QueryObservation(query.query_id)
        priority = getattr(query, "priority", 0) or 0
        relative_deadline = getattr(query, "deadline", None)
        qos: QueryQoS | None = None
        if priority or relative_deadline is not None:
            qos = QueryQoS(
                priority=priority,
                deadline=(
                    time.monotonic() + relative_deadline
                    if relative_deadline is not None
                    else None
                ),
            )

        backend = self.scheme.backend
        cache = self.series_cache
        replay_eligible = (
            engine is None
            or engine == "auto"
            or isinstance(engine, AutoEngine)
        )
        key = b""
        if cache is not None:
            key = chain_series_key(query, backend)
        if cache is not None and replay_eligible:
            epochs = tuple(self.table_epoch(t.name) for t in tables)
            entry = cache.lookup(key, epochs)
            if entry is not None and not isinstance(entry, ChainSeriesEntry):
                entry = None
            if entry is not None:
                versions = tuple(
                    self.table_version(t.name) for t in tables
                )
                if entry.lock.acquire(blocking=False):
                    try:
                        if entry.versions == versions:
                            return (
                                yield from self._chain_replay_events(
                                    entry, query, tables, stats
                                )
                            )
                        return (
                            yield from self._chain_delta_events(
                                entry,
                                query,
                                tables,
                                stats,
                                qos,
                                active_engine,
                                versions,
                            )
                        )
                    finally:
                        entry.lock.release()
                cache.stats.lock_contention += 1
        if cache is not None:
            miss_epochs = tuple(self.table_epoch(t.name) for t in tables)
            miss_versions = tuple(
                self.table_version(t.name) for t in tables
            )
            miss_tombstones = [
                set(self._tombstones.get(t.name, ())) for t in tables
            ]

        started = time.perf_counter()
        candidates = [
            self._live(t.name, self._candidates(t, prefilter))
            for t, prefilter in zip(tables, query.prefilters)
        ]
        stats.candidates_left = len(candidates[0])
        stats.candidates_right = len(candidates[-1])

        from repro.bench.costmodel import default_engine_cost_model

        model = getattr(active_engine, "cost_model", None)
        if model is None:
            model = default_engine_cost_model(backend.name)
        distincts = [
            self._distinct_estimate(t.name, len(c))
            for t, c in zip(tables, candidates)
        ]
        plan = compile_plan(model, [len(c) for c in candidates], distincts)
        if stats.planner is None:
            stats.planner = []
        stats.planner.append(plan.record())
        stats.plan_nodes = n - 1
        stats.matcher = "hash"
        executor = ChainExecutor(plan.order)

        groups = group_chain_sides(query, backend)
        stats.handle_pool_hits = n - len(groups)
        position_rows = [set(c) for c in candidates]

        # Cross-series reuse: pre-feed whatever the handle store still
        # holds for each side, decrypt only the rest.
        warm_completed: list[tuple[int, ...]] = []
        cold: list[tuple] = []
        for group in groups:
            union_rows = sorted(
                set().union(*(position_rows[p] for p in group.positions))
            )
            warm: dict[int, bytes] = {}
            if self.handle_store is not None and union_rows:
                warm = self.handle_store.lookup(
                    group.table, self.table_epoch(group.table), group.digest
                )
            warm_items = [
                (row, warm[row]) for row in union_rows if row in warm
            ]
            cold.append(
                (group, [row for row in union_rows if row not in warm])
            )
            if not warm_items:
                continue
            stats.reused_handles += len(warm_items)
            for row, handle in warm_items:
                observation.handles[(group.table, row)] = handle
            for position in group.positions:
                allowed = position_rows[position]
                fed = [
                    (row, handle)
                    for row, handle in warm_items
                    if row in allowed
                ]
                if fed:
                    warm_completed.extend(executor.feed(position, fed))

        source_meta: dict[tuple[int, ...], tuple] = {}
        sources: list[ChainSideSource] = []
        try:
            for group, cold_rows in cold:
                table = self.table(group.table)
                stream = active_engine.decrypt_stream(
                    backend,
                    group.token.elements,
                    self._side_ciphertexts(table, group.token, cold_rows),
                    qos=qos,
                )
                sources.append(
                    ChainSideSource(group.positions, stream, cold_rows)
                )
                source_meta[tuple(group.positions)] = (
                    group.table,
                    self.table_epoch(group.table),
                    group.digest,
                )
        except BaseException:
            for source in sources:
                source.close()
            raise
        stats.decryptions += sum(len(cold_rows) for _, cold_rows in cold)

        def record_items(positions, items) -> None:
            table_name, epoch, digest = source_meta[tuple(positions)]
            for row, handle in items:
                observation.handles[(table_name, row)] = handle
            if self.handle_store is not None:
                self.handle_store.record(table_name, epoch, digest, items)

        pipeline = run_chain_pipeline(
            sources, executor, position_rows, on_items=record_items
        )
        saw_first_match = False
        try:
            if warm_completed:
                saw_first_match = True
                stats.time_to_first_match = time.perf_counter() - started
                yield list(warm_completed)
            while True:
                try:
                    new_tuples = next(pipeline)
                except StopIteration as stop:
                    outcome = stop.value
                    break
                if qos is not None and qos.expired():
                    raise DeadlineError(
                        f"query {query.query_id} exceeded its deadline "
                        f"of {relative_deadline}s; cancelled mid-chain"
                    )
                yield new_tuples
        finally:
            pipeline.close()
            # ``pipeline.close()`` on a never-started generator does not
            # run its body's cleanup, so close the sources directly too
            # (stream close is idempotent).
            for source in sources:
                source.close()
            self.observations.append(observation)

        for report in outcome.outcomes:
            if report is not None:
                stats.merge_report(report)
        tuples = outcome.tuples
        stats.matches = len(tuples)
        stats.probes = executor.probes
        stats.comparisons = executor.comparisons
        if not saw_first_match:
            stats.time_to_first_match = outcome.time_to_first_match
        stats.decrypt_seconds = outcome.decrypt_seconds
        stats.match_seconds = outcome.match_seconds
        if cache is not None:
            entry = ChainSeriesEntry(
                key, query.tables, miss_epochs, miss_versions, executor
            )
            entry.applied_tombstones = miss_tombstones
            cache.store(entry)
        return EncryptedChainResult(
            tables=tuple(query.tables),
            tuples=tuples,
            payloads=self._chain_payloads(tables, tuples),
            stats=stats,
        )

    def _chain_replay_events(
        self,
        entry: ChainSeriesEntry,
        query: EncryptedChainQuery,
        tables: list[EncryptedTable],
        stats: ServerStats,
    ):
        """Warm chain replay: the retained executor's canonical tuples,
        zero pairing work — the chain counterpart of
        :meth:`_series_replay_events`."""
        executor = entry.executor
        observation = QueryObservation(query.query_id)
        for position, table in enumerate(tables):
            for row, handle in executor.handles[position].items():
                observation.handles[(table.name, row)] = handle
        self.observations.append(observation)
        tuples = executor.finish()
        entry.replays += 1
        if self.series_cache is not None:
            self.series_cache.stats.replays += 1
        stats.series_cache_hits = 1
        stats.reused_handles = entry.reused_handles()
        stats.matches = len(tuples)
        stats.probes = executor.probes
        stats.comparisons = executor.comparisons
        stats.matcher = "hash"
        stats.engine = "series"
        stats.engine_selected = "series"
        stats.plan_nodes = len(tables) - 1
        stats.candidates_left = len(executor.handles[0])
        stats.candidates_right = len(executor.handles[-1])
        stats.planner = [
            {
                "stage": "series",
                "outcome": "replay",
                "reused_handles": stats.reused_handles,
                "tuples": len(tuples),
            }
        ]
        if tuples:
            yield list(tuples)
        return EncryptedChainResult(
            tables=tuple(query.tables),
            tuples=tuples,
            payloads=self._chain_payloads(tables, tuples),
            stats=stats,
        )

    def _chain_delta_events(
        self,
        entry: ChainSeriesEntry,
        query: EncryptedChainQuery,
        tables: list[EncryptedTable],
        stats: ServerStats,
        qos: QueryQoS | None,
        active_engine: ExecutionEngine,
        versions: tuple[int, ...],
    ):
        """Chain delta refresh: retract the new tombstones, then SJ.Dec
        only never-fed rows into the retained executor — the chain
        counterpart of :meth:`_series_delta_events`, still pooling
        shared sides."""
        cache = self.series_cache
        executor = entry.executor
        n = len(tables)
        for position, table in enumerate(tables):
            current = set(self._tombstones.get(table.name, ()))
            new = current - entry.applied_tombstones[position]
            if new:
                executor.retract(position, new)
                entry.applied_tombstones[position] |= new
        stats.series_cache_hits = 1
        stats.reused_handles = entry.reused_handles()
        stats.matcher = "hash"
        stats.plan_nodes = n - 1

        candidates = [
            self._live(t.name, self._candidates(t, prefilter))
            for t, prefilter in zip(tables, query.prefilters)
        ]
        stats.candidates_left = len(candidates[0])
        stats.candidates_right = len(candidates[-1])
        position_delta = [
            {i for i in rows if i not in executor.handles[position]}
            for position, rows in enumerate(candidates)
        ]
        delta_rows = sum(len(rows) for rows in position_delta)
        stats.delta_rows = delta_rows

        chosen_engine = active_engine
        if isinstance(active_engine, AutoEngine):
            from repro.bench.costmodel import (
                choose_delta_engine,
                default_engine_cost_model,
            )

            model = active_engine.cost_model
            if model is None:
                model = default_engine_cost_model(self.scheme.backend.name)
            pool_started, workers = self.execution_service.warmth()
            prepared_sides = [
                table.prepared_rows is not None
                for table, delta in zip(tables, position_delta)
                if delta
            ]
            choice, estimates = choose_delta_engine(
                model,
                rows=delta_rows,
                dimension=self.scheme.params.dimension,
                workers=workers,
                batch_size=active_engine.batch_size,
                parallel_batch_size=max(1, active_engine.batch_size // 2),
                pool_warm=pool_started,
                allowed=active_engine.candidates,
                prepared=bool(prepared_sides) and all(prepared_sides),
            )
            chosen_engine = self._resolve_engine(choice)
            if stats.planner is None:
                stats.planner = []
            stats.planner.append({
                "stage": "delta",
                "rows": delta_rows,
                "chosen": choice,
                "estimates": {
                    name: float(sec) for name, sec in estimates.items()
                },
            })

        retained_tuples = executor.finish()
        if retained_tuples:
            yield list(retained_tuples)

        observation = QueryObservation(query.query_id)
        backend = self.scheme.backend
        for position, table in enumerate(tables):
            for row, handle in executor.handles[position].items():
                observation.handles[(table.name, row)] = handle

        groups = group_chain_sides(query, backend)
        stats.handle_pool_hits = n - len(groups)
        source_meta: dict[tuple[int, ...], tuple] = {}
        sources: list[ChainSideSource] = []
        try:
            for group in groups:
                union_rows = sorted(
                    set().union(
                        *(position_delta[p] for p in group.positions)
                    )
                )
                table = self.table(group.table)
                stream = chosen_engine.decrypt_stream(
                    backend,
                    group.token.elements,
                    self._side_ciphertexts(table, group.token, union_rows),
                    qos=qos,
                )
                sources.append(
                    ChainSideSource(group.positions, stream, union_rows)
                )
                source_meta[tuple(group.positions)] = (
                    group.table,
                    self.table_epoch(group.table),
                    group.digest,
                )
        except BaseException:
            for source in sources:
                source.close()
            raise
        stats.decryptions += sum(len(source.rows) for source in sources)

        def record_items(positions, items) -> None:
            table_name, epoch, digest = source_meta[tuple(positions)]
            for row, handle in items:
                observation.handles[(table_name, row)] = handle
            if self.handle_store is not None:
                self.handle_store.record(table_name, epoch, digest, items)

        pipeline = run_chain_pipeline(
            sources, executor, position_delta, on_items=record_items
        )
        try:
            while True:
                try:
                    new_tuples = next(pipeline)
                except StopIteration as stop:
                    outcome = stop.value
                    break
                if qos is not None and qos.expired():
                    raise DeadlineError(
                        f"query {query.query_id} exceeded its deadline; "
                        "cancelled mid-refresh"
                    )
                yield new_tuples
        finally:
            pipeline.close()
            for source in sources:
                source.close()
            self.observations.append(observation)

        for report in outcome.outcomes:
            if report is not None:
                stats.merge_report(report)
        tuples = outcome.tuples
        stats.matches = len(tuples)
        stats.probes = executor.probes
        stats.comparisons = executor.comparisons
        stats.time_to_first_match = outcome.time_to_first_match
        stats.decrypt_seconds = outcome.decrypt_seconds
        stats.match_seconds = outcome.match_seconds
        entry.versions = tuple(versions)
        entry.delta_refreshes += 1
        if cache is not None:
            cache.stats.delta_refreshes += 1
            cache.reaccount(entry)
        return EncryptedChainResult(
            tables=tuple(query.tables),
            tuples=tuples,
            payloads=self._chain_payloads(tables, tuples),
            stats=stats,
        )

    def execute_join(
        self,
        query: EncryptedJoinQuery,
        algorithm: str = "hash",
        engine: ExecutionEngine | str | None = None,
    ) -> EncryptedJoinResult:
        """Run SJ.Dec + SJ.Match and return the joined encrypted rows.

        The materializing wrapper around the streaming pipeline:
        internally the join still runs staged (chunks are matched as
        they decrypt, and ``stats`` carries the stage timings), but
        only the final, canonically ordered result is returned.
        """
        events = self._pipeline_events(query, algorithm, engine)
        while True:
            try:
                next(events)
            except StopIteration as stop:
                return stop.value
