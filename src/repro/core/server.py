"""The server side: storage, SJ.Dec, and the hash-join matcher.

The server is the semi-honest adversary of the paper's model: it stores
encrypted tables, applies tokens to produce per-row handles (SJ.Dec) and
joins rows whose handles match (SJ.Match).  Everything it observes while
doing so is recorded in :attr:`SecureJoinServer.observations`, which is
exactly the adversary view the leakage analyzer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import EncryptedJoinQuery, EncryptedTable
from repro.core.engine import EngineReport, ExecutionEngine, get_engine
from repro.core.scheme import SecureJoinParams, SecureJoinScheme, SJToken
from repro.core.service import ExecutionService
from repro.crypto.backend import BilinearBackend
from repro.errors import QueryError, SchemeError


@dataclass
class ServerStats:
    """Operation counts for one join execution.

    ``comparisons`` counts handle-equality work in the matcher: the
    nested-loop matcher compares every candidate pair (O(n·m)); the hash
    matcher performs one hash-key comparison per probe plus one equality
    confirmation per bucket entry it emits (O(n + m + output)).

    ``miller_loops`` / ``final_exponentiations`` record the pairing work
    of SJ.Dec as issued by the execution engine (see
    :mod:`repro.core.engine`); ``batches``, ``max_batch_size`` and
    ``workers`` describe how that work was grouped and fanned out.

    ``engine`` is the engine that ran the query; ``engine_source`` says
    who picked it (``"default"`` / ``"hint"`` / ``"override"``);
    ``engine_selected`` is what actually executed — it differs from
    ``engine`` only under the ``"auto"`` planner, whose per-side inputs
    and cost estimates land in ``planner`` (one dict per decrypted
    side).  ``pool_generation`` / ``worker_restarts`` expose the
    persistent pool's lifecycle: the generation only moves when the pool
    is actually (re)created, so equal generations across queries prove
    worker reuse.
    """

    candidates_left: int = 0
    candidates_right: int = 0
    decryptions: int = 0
    probes: int = 0
    comparisons: int = 0
    matches: int = 0
    engine: str = "batched"
    batches: int = 0
    max_batch_size: int = 0
    workers: int = 1
    miller_loops: int = 0
    final_exponentiations: int = 0
    engine_source: str = "default"
    engine_selected: str = ""
    planner: list | None = None
    pool_generation: int = 0
    worker_restarts: int = 0

    def merge_report(self, report: EngineReport) -> None:
        """Fold one side's engine report into the per-query totals."""
        self.engine = report.engine
        selected = report.selected or report.engine
        if not self.engine_selected:
            self.engine_selected = selected
        elif selected not in self.engine_selected.split("+"):
            self.engine_selected += f"+{selected}"
        self.batches += report.batches
        self.max_batch_size = max(self.max_batch_size, report.max_batch_size)
        self.workers = max(self.workers, report.workers)
        self.miller_loops += report.miller_loops
        self.final_exponentiations += report.final_exponentiations
        if report.planner is not None:
            if self.planner is None:
                self.planner = []
            self.planner.append(dict(report.planner))
        self.pool_generation = max(self.pool_generation, report.pool_generation)
        self.worker_restarts = max(self.worker_restarts, report.worker_restarts)


@dataclass
class EncryptedJoinResult:
    """What the server returns: matched payload pairs plus indices."""

    left_table: str
    right_table: str
    index_pairs: list[tuple[int, int]]
    left_payloads: list[bytes]
    right_payloads: list[bytes]
    stats: ServerStats


@dataclass
class QueryObservation:
    """The adversary view of one query: every handle the server computed.

    ``handles`` maps ``(table_name, row_index)`` to the handle bytes.
    Equal bytes mean the server observed a true equality pair.
    """

    query_id: int
    handles: dict[tuple[str, int], bytes] = field(default_factory=dict)


class SecureJoinServer:
    """Stores encrypted tables and executes encrypted equi-joins."""

    def __init__(
        self,
        params: SecureJoinParams,
        backend: BilinearBackend | None = None,
        engine: ExecutionEngine | str | None = None,
        hint_engines: tuple[str, ...] = ("serial", "batched"),
        workers: int | None = None,
    ):
        # The server only needs public parameters — never the master key.
        self.scheme = SecureJoinScheme(params, backend)
        # The server owns one persistent worker pool for its whole
        # lifetime; every pool-using engine it resolves is bound to it.
        # Construction is lazy — no process is forked until a query
        # actually fans out — and ``close()`` (or using the server as a
        # context manager) tears it down.
        self.execution_service = ExecutionService(workers=workers)
        # Default execution engine; per-query overrides and client hints
        # (see execute_join) take precedence.  ``hint_engines`` is the
        # allowlist of engines a client hint may select: hints are
        # advisory, and the resources they spend belong to the server,
        # so "parallel" (the worker pool) and "auto" (which may choose
        # it) require the operator to opt in here.  Disallowed hints
        # fall back to the default.
        self.engine = get_engine(engine, service=self.execution_service)
        self.hint_engines = frozenset(hint_engines)
        self._engine_cache: dict[str, ExecutionEngine] = {}
        self._tables: dict[str, EncryptedTable] = {}
        # Inverted index over pre-filter tags: table -> column -> tag -> rows.
        self._tag_index: dict[str, dict[str, dict[bytes, list[int]]]] = {}
        # Deleted row indices per table (tombstones).
        self._tombstones: dict[str, set[int]] = {}
        self.observations: list[QueryObservation] = []

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut down the server's worker pool.  Idempotent."""
        self.execution_service.close()

    def __enter__(self) -> "SecureJoinServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _resolve_engine(self, engine: ExecutionEngine | str) -> ExecutionEngine:
        """An engine bound to this server's pool; named engines are cached
        so repeated ``engine="parallel"`` calls reuse one instance (and
        therefore one warm pool) instead of re-instantiating per query."""
        if isinstance(engine, ExecutionEngine):
            return get_engine(engine, service=self.execution_service)
        cached = self._engine_cache.get(engine)
        if cached is None:
            cached = get_engine(engine, service=self.execution_service)
            self._engine_cache[engine] = cached
        return cached

    # -- storage ------------------------------------------------------------
    def store(self, encrypted_table: EncryptedTable) -> None:
        self._tables[encrypted_table.name] = encrypted_table
        index: dict[str, dict[bytes, list[int]]] = {}
        if encrypted_table.prefilter_tags:
            for column, tags in encrypted_table.prefilter_tags.items():
                postings: dict[bytes, list[int]] = {}
                for row_index, tag in enumerate(tags):
                    postings.setdefault(tag, []).append(row_index)
                index[column] = postings
        self._tag_index[encrypted_table.name] = index

    def table(self, name: str) -> EncryptedTable:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"server has no table {name!r}") from None

    # -- dynamic updates --------------------------------------------------
    def insert_row(
        self,
        table_name: str,
        ciphertext,
        payload: bytes,
        prefilter_tags: dict[str, bytes] | None = None,
    ) -> int:
        """Append one client-encrypted row; returns its row index.

        The scheme is row-wise, so inserts are O(1): no existing
        ciphertext is touched and future queries cover the new row
        automatically.
        """
        table = self.table(table_name)
        index = len(table.ciphertexts)
        table.ciphertexts.append(ciphertext)
        table.payloads.append(payload)
        if table.prefilter_tags is not None:
            if prefilter_tags is None or set(prefilter_tags) != set(
                table.prefilter_tags
            ):
                raise QueryError(
                    "insert into a pre-filtered table must carry tags for "
                    f"exactly the columns {sorted(table.prefilter_tags)}"
                )
            for column, tag in prefilter_tags.items():
                table.prefilter_tags[column].append(tag)
                self._tag_index[table_name][column].setdefault(
                    tag, []
                ).append(index)
        return index

    def delete_rows(self, table_name: str, indices: list[int]) -> None:
        """Tombstone rows: they stop participating in every future query."""
        table = self.table(table_name)
        tombstones = self._tombstones.setdefault(table_name, set())
        for index in indices:
            if not 0 <= index < len(table.ciphertexts):
                raise QueryError(
                    f"row index {index} out of range for {table_name!r}"
                )
            tombstones.add(index)

    def _live(self, table_name: str, indices: list[int]) -> list[int]:
        tombstones = self._tombstones.get(table_name)
        if not tombstones:
            return indices
        return [i for i in indices if i not in tombstones]

    # -- query execution ------------------------------------------------------
    def _candidates(
        self,
        table: EncryptedTable,
        prefilter: dict[str, frozenset[bytes]] | None,
    ) -> list[int]:
        """Row indices surviving the (optional) searchable pre-filter."""
        if not prefilter:
            return list(range(len(table)))
        if table.prefilter_tags is None:
            raise QueryError(
                f"query carries pre-filter tokens but table {table.name!r} "
                "was encrypted without pre-filter tags"
            )
        index = self._tag_index[table.name]
        survivors: set[int] | None = None
        for column, allowed in prefilter.items():
            postings = index.get(column)
            if postings is None:
                raise QueryError(
                    f"no pre-filter tags for column {column!r} in "
                    f"table {table.name!r}"
                )
            matching: set[int] = set()
            for tag in allowed:
                matching.update(postings.get(tag, ()))
            survivors = matching if survivors is None else survivors & matching
            if not survivors:
                return []
        return sorted(survivors)

    def _decrypt_side(
        self,
        table: EncryptedTable,
        token: SJToken,
        candidates: list[int],
        observation: QueryObservation,
        stats: ServerStats,
        engine: ExecutionEngine,
    ) -> list[tuple[int, bytes]]:
        """SJ.Dec over the candidate rows; returns (row_index, handle bytes)."""
        dimension = self.scheme.params.dimension
        if len(token) != dimension:
            raise SchemeError(
                f"token dimension {len(token)} != scheme dimension {dimension}"
            )
        ciphertexts = []
        for index in candidates:
            ciphertext = table.ciphertexts[index]
            if len(ciphertext) != dimension:
                raise SchemeError(
                    f"ciphertext dimension {len(ciphertext)} != scheme "
                    f"dimension {dimension}"
                )
            ciphertexts.append(ciphertext.elements)
        keys, report = engine.decrypt_handles(
            self.scheme.backend, token.elements, ciphertexts
        )
        stats.decryptions += len(candidates)
        stats.merge_report(report)
        handles = list(zip(candidates, keys))
        for index, key in handles:
            observation.handles[(table.name, index)] = key
        return handles

    def execute_join(
        self,
        query: EncryptedJoinQuery,
        algorithm: str = "hash",
        engine: ExecutionEngine | str | None = None,
    ) -> EncryptedJoinResult:
        """Run SJ.Dec + SJ.Match and return the joined encrypted rows.

        ``algorithm`` selects the matcher: ``"hash"`` (the paper's
        expected-O(n) hash join) or ``"nested"`` (the O(n^2) nested loop
        that Hahn et al.'s scheme is limited to — kept for ablations).

        ``engine`` selects the SJ.Dec execution engine for this query
        (``"serial"``, ``"batched"``, ``"parallel"``, ``"auto"`` or an
        :class:`~repro.core.engine.ExecutionEngine` instance); when
        omitted, the query's client hint applies if the server's
        ``hint_engines`` allowlist permits it, then the server default.
        Pool-using engines run on the server's persistent
        ``execution_service`` either way.
        """
        if algorithm not in ("hash", "nested"):
            raise QueryError(f"unknown join algorithm {algorithm!r}")
        if engine is not None:
            active_engine = self._resolve_engine(engine)
            engine_source = "override"
        elif (
            query.engine_hint is not None
            and query.engine_hint in self.hint_engines
        ):
            active_engine = self._resolve_engine(query.engine_hint)
            engine_source = "hint"
        else:
            active_engine = self.engine
            engine_source = "default"
        left = self.table(query.left_table)
        right = self.table(query.right_table)
        stats = ServerStats(engine_source=engine_source)
        observation = QueryObservation(query.query_id)

        left_candidates = self._live(
            left.name, self._candidates(left, query.left_prefilter)
        )
        right_candidates = self._live(
            right.name, self._candidates(right, query.right_prefilter)
        )
        stats.candidates_left = len(left_candidates)
        stats.candidates_right = len(right_candidates)

        left_handles = self._decrypt_side(
            left, query.left_token, left_candidates, observation, stats,
            active_engine,
        )
        right_handles = self._decrypt_side(
            right, query.right_token, right_candidates, observation, stats,
            active_engine,
        )
        self.observations.append(observation)

        if algorithm == "hash":
            pairs = self._hash_match(left_handles, right_handles, stats)
        else:
            pairs = self._nested_match(left_handles, right_handles, stats)
        stats.matches = len(pairs)
        return EncryptedJoinResult(
            left_table=left.name,
            right_table=right.name,
            index_pairs=pairs,
            left_payloads=[left.payloads[i] for i, _ in pairs],
            right_payloads=[right.payloads[j] for _, j in pairs],
            stats=stats,
        )

    @staticmethod
    def _hash_match(
        left_handles: list[tuple[int, bytes]],
        right_handles: list[tuple[int, bytes]],
        stats: ServerStats,
    ) -> list[tuple[int, int]]:
        buckets: dict[bytes, list[int]] = {}
        for index, handle in left_handles:
            buckets.setdefault(handle, []).append(index)
        pairs = []
        for right_index, handle in right_handles:
            stats.probes += 1
            # One hash-key comparison per probe, plus one equality
            # confirmation per bucket entry: O(n + m + output) total,
            # versus the nested matcher's O(n * m).
            stats.comparisons += 1
            for left_index in buckets.get(handle, ()):
                stats.comparisons += 1
                pairs.append((left_index, right_index))
        return pairs

    @staticmethod
    def _nested_match(
        left_handles: list[tuple[int, bytes]],
        right_handles: list[tuple[int, bytes]],
        stats: ServerStats,
    ) -> list[tuple[int, int]]:
        pairs = []
        for left_index, left_handle in left_handles:
            for right_index, right_handle in right_handles:
                stats.comparisons += 1
                if left_handle == right_handle:
                    pairs.append((left_index, right_index))
        # Keep output order consistent with the hash matcher (right-major).
        pairs.sort(key=lambda p: (p[1], p[0]))
        return pairs
