"""Execution engines: how the server turns ciphertexts into handles.

SJ.Dec over a candidate side is the server's hot path — one product of
pairings per row.  The engines here trade off how that work is issued
against the bilinear backend:

- :class:`SerialEngine` — the naive baseline: one *full pairing per
  vector component* (d Miller loops and d final exponentiations per
  row), combined in GT.  This is the "one pairing at a time" path the
  ablation benchmarks call the naive product of pairings.
- :class:`BatchedEngine` — groups rows into chunks and issues each chunk
  through :meth:`~repro.crypto.backend.BilinearBackend.pair_vectors_batch`,
  so every row costs d Miller loops but only *one* shared final
  exponentiation — the multi-pairing optimization applied to the join.
- :class:`ParallelEngine` — fans the chunks out across a *persistent*
  worker pool (:class:`~repro.core.service.ExecutionService`): workers
  are forked lazily, survive across queries, cache the backend and
  decoded tokens, and read ciphertext chunks out of shared memory.
- :class:`AutoEngine` — the cost-model planner: estimates each
  engine's runtime per side from the candidate count, the scheme
  dimension and per-operation timings
  (:mod:`repro.bench.costmodel`), corrects the estimates with online
  observations of its own past queries, and delegates to the cheapest
  engine.

Since the streaming-pipeline refactor the primary interface is
:meth:`ExecutionEngine.decrypt_stream`: a :class:`HandleStream` of
:class:`HandleChunk` batches emitted *as they are decrypted* (pooled
engines emit them in completion order), so the matcher can start
pairing while SJ.Dec is still running.  :meth:`decrypt_handles` is the
materializing wrapper — it drains the stream and reassembles row order.

All engines produce byte-identical handles: the final exponentiation is
a group homomorphism, so the per-pair product equals the shared-exponent
multi-pairing, and the fast backend's modular arithmetic agrees by
construction.  Engines report their work in an :class:`EngineReport`
that the server merges into :class:`~repro.core.server.ServerStats`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.service import (
    ExecutionService,
    QueryQoS,
    default_worker_count,
    get_default_service,
    peek_default_service,
)
from repro.crypto.backend import BilinearBackend, PreparedRow
from repro.errors import DeadlineError, QueryError

#: Rows per chunk when a batching engine is built without an explicit size.
DEFAULT_BATCH_SIZE = 64


@dataclass
class EngineReport:
    """What one engine invocation did, for ``ServerStats`` accounting.

    ``selected`` is the engine that actually executed the side — it
    differs from ``engine`` only for the planner (``engine`` stays
    ``"auto"``, ``selected`` records its choice).  ``planner`` carries
    the planner's inputs, cost estimates and observed runtime for that
    side; ``pool_generation`` / ``worker_restarts`` /
    ``concurrent_sides`` surface the persistent pool's lifecycle and
    admission state when the side ran through it.
    """

    engine: str
    batches: int = 0
    max_batch_size: int = 0
    workers: int = 1
    miller_loops: int = 0
    final_exponentiations: int = 0
    prepared_miller_loops: int = 0
    preparations: int = 0
    selected: str = ""
    planner: dict | None = None
    pool_generation: int = 0
    worker_restarts: int = 0
    concurrent_sides: int = 0


@dataclass
class HandleChunk:
    """One decrypted chunk: handles for rows ``start .. start+len-1``
    of the side's candidate order."""

    start: int
    handles: list[bytes] = field(default_factory=list)


class HandleStream:
    """An iterator of :class:`HandleChunk` with a deferred report.

    Wraps the engine's generator; ``report`` becomes available once the
    stream is exhausted (the generator returns it).  ``close()`` aborts
    the stream and runs the engine's cleanup — pipelines must close the
    streams they abandon so pooled sides release their contexts.
    """

    def __init__(self, generator, on_close=None):
        self._generator = generator
        self._on_close = on_close
        self._cleaned = False
        self.report: EngineReport | None = None

    def __iter__(self) -> "HandleStream":
        return self

    def __next__(self) -> HandleChunk:
        try:
            return next(self._generator)
        except StopIteration as stop:
            if self.report is None:
                self.report = stop.value
            self._cleanup()
            raise StopIteration from None
        except BaseException:
            self._cleanup()
            raise

    def close(self) -> None:
        self._generator.close()
        self._cleanup()

    def _cleanup(self) -> None:
        if not self._cleaned:
            self._cleaned = True
            if self._on_close is not None:
                self._on_close()


class ExecutionEngine(ABC):
    """Strategy for decrypting one side's candidate rows into handles."""

    name: str

    @abstractmethod
    def decrypt_stream(
        self,
        backend: BilinearBackend,
        token_elements: Sequence,
        ciphertext_vectors: Sequence[Sequence],
        qos: QueryQoS | None = None,
    ) -> HandleStream:
        """A stream of decrypted chunks for the side, in completion order.

        ``qos`` carries the owning query's priority and absolute
        deadline: pooled engines thread it into the admission scheduler
        (dispatch preference / mid-flight cancellation), inline engines
        check the deadline between chunks and raise
        :class:`~repro.errors.DeadlineError` once it lapses.
        """

    def decrypt_handles(
        self,
        backend: BilinearBackend,
        token_elements: Sequence,
        ciphertext_vectors: Sequence[Sequence],
        qos: QueryQoS | None = None,
    ) -> tuple[list[bytes], EngineReport]:
        """Handles (canonical bytes) for each ciphertext vector, in order.

        The materializing wrapper around :meth:`decrypt_stream`: drains
        the stream and reassembles row order from the chunk offsets.
        """
        stream = self.decrypt_stream(
            backend, token_elements, ciphertext_vectors, qos=qos
        )
        chunks: dict[int, list[bytes]] = {}
        for chunk in stream:
            chunks[chunk.start] = chunk.handles
        handles = [
            handle for start in sorted(chunks) for handle in chunks[start]
        ]
        return handles, stream.report


def _chunked(items: Sequence, size: int) -> list[tuple[int, Sequence]]:
    """``(start_offset, slice)`` chunks covering ``items`` in order."""
    return [(i, items[i : i + size]) for i in range(0, len(items), size)]


class SerialEngine(ExecutionEngine):
    """One full pairing per vector component, one row at a time.

    Every component pair costs a Miller loop *and* a final
    exponentiation; the GT partial products are combined with the group
    operation.  On the fast backend the arithmetic (and therefore the
    handle bytes) is identical to the batched path — only the modeled
    operation counts differ.  Streams one chunk per row.
    """

    name = "serial"

    def decrypt_stream(
        self, backend, token_elements, ciphertext_vectors, qos=None
    ):
        def run():
            miller_loops = 0
            final_exponentiations = 0
            prepared_miller_loops = 0
            for offset, ciphertext in enumerate(ciphertext_vectors):
                if qos is not None and qos.expired():
                    raise DeadlineError(
                        "query exceeded its deadline; serial side "
                        f"cancelled at row {offset}"
                    )
                # Per-chunk op accounting: interleaved streams share the
                # backend's process-wide counters, so a start-to-end
                # snapshot would absorb the other side's work.  This is
                # exact for one thread; concurrent inline queries on one
                # backend can still misattribute ops across threads
                # (stats only — pooled sides count in their workers).
                snapshot = backend.ops.snapshot()
                accumulator = backend.gt_identity()
                for g1, g2 in zip(token_elements, ciphertext):
                    accumulator = backend.gt_mul(
                        accumulator, backend.pair(g1, g2)
                    )
                delta = backend.ops.since(snapshot)
                miller_loops += delta.miller_loops
                final_exponentiations += delta.final_exponentiations
                prepared_miller_loops += delta.prepared_miller_loops
                yield HandleChunk(offset, [accumulator.to_bytes()])
            return EngineReport(
                engine=self.name,
                batches=len(ciphertext_vectors),
                max_batch_size=1 if ciphertext_vectors else 0,
                workers=1,
                miller_loops=miller_loops,
                final_exponentiations=final_exponentiations,
                prepared_miller_loops=prepared_miller_loops,
            )

        return HandleStream(run())


class BatchedEngine(ExecutionEngine):
    """Chunked multi-pairing decryption with shared final exponentiations."""

    name = "batched"

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE):
        if batch_size < 1:
            raise QueryError("batch size must be at least 1")
        self.batch_size = batch_size

    def decrypt_stream(
        self, backend, token_elements, ciphertext_vectors, qos=None
    ):
        def run():
            chunks = _chunked(ciphertext_vectors, self.batch_size)
            miller_loops = 0
            final_exponentiations = 0
            prepared_miller_loops = 0
            for start, chunk in chunks:
                if qos is not None and qos.expired():
                    raise DeadlineError(
                        "query exceeded its deadline; batched side "
                        f"cancelled at row {start}"
                    )
                snapshot = backend.ops.snapshot()
                gts = backend.pair_vectors_batch(token_elements, chunk)
                delta = backend.ops.since(snapshot)
                miller_loops += delta.miller_loops
                final_exponentiations += delta.final_exponentiations
                prepared_miller_loops += delta.prepared_miller_loops
                yield HandleChunk(start, [gt.to_bytes() for gt in gts])
            return EngineReport(
                engine=self.name,
                batches=len(chunks),
                max_batch_size=max((len(c) for _, c in chunks), default=0),
                workers=1,
                miller_loops=miller_loops,
                final_exponentiations=final_exponentiations,
                prepared_miller_loops=prepared_miller_loops,
            )

        return HandleStream(run())


class ParallelEngine(ExecutionEngine):
    """Batched decryption fanned out over a *persistent* worker pool.

    Sides with at most one chunk's worth of rows run inline (even a
    warm pool costs IPC); larger sides are **admitted** to an
    :class:`~repro.core.service.ExecutionService` — lazily started the
    first time it is needed and shared by every concurrently admitted
    side — and their chunks stream back in completion order.  A server
    binds its own service via :meth:`bind_service`; standalone engines
    fall back to the process-wide default service.
    """

    name = "parallel"

    def __init__(
        self,
        workers: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE // 2,
        service: ExecutionService | None = None,
    ):
        if workers is not None and workers < 1:
            raise QueryError("worker count must be at least 1")
        if batch_size < 1:
            raise QueryError("batch size must be at least 1")
        self.workers = (
            workers if workers is not None else default_worker_count()
        )
        self.batch_size = batch_size
        self._inline = BatchedEngine(batch_size)
        self._service = service

    def effective_workers(self) -> int:
        """Workers a pooled side would actually use: the engine's own
        cap, further capped by the pool it is (or would be) bound to."""
        service = self._service or peek_default_service()
        if service is not None:
            return min(self.workers, service.worker_target)
        return self.workers

    def pool_warm(self) -> bool:
        """Whether a pooled side would find its workers already forked."""
        service = self._service or peek_default_service()
        return service is not None and service.started

    def bind_service(self, service: ExecutionService) -> None:
        """Attach the pool this engine should use.

        A no-op while the engine is bound to a *live* pool, so a shared
        service keeps winning; but a bound pool whose owner closed it is
        abandoned in favor of the new one — reusing an engine with a
        second server must not resurrect the first server's pool.
        """
        if self._service is None or (
            self._service is not service and self._service.closed
        ):
            self._service = service

    @property
    def service(self) -> ExecutionService:
        if self._service is None:
            self._service = get_default_service()
        return self._service

    def decrypt_stream(
        self, backend, token_elements, ciphertext_vectors, qos=None
    ):
        if self.workers == 1 or len(ciphertext_vectors) <= self.batch_size:
            inline = self._inline.decrypt_stream(
                backend, token_elements, ciphertext_vectors, qos=qos
            )

            def run_inline():
                for chunk in inline:
                    yield chunk
                report = inline.report
                report.engine = self.name
                return report

            return HandleStream(run_inline(), on_close=inline.close)

        service = self.service
        side = service.admit_side(
            backend,
            token_elements,
            ciphertext_vectors,
            self.batch_size,
            max_workers=self.workers,
            qos=qos,
        )

        def run_pooled():
            stream = service.stream_chunks(side)
            side_report = None
            try:
                while True:
                    try:
                        start, handles = next(stream)
                    except StopIteration as stop:
                        side_report = stop.value
                        break
                    yield HandleChunk(start, handles)
            finally:
                service.release_side(side)
            return EngineReport(
                engine=self.name,
                batches=side_report.chunks,
                max_batch_size=side_report.max_chunk,
                workers=side_report.workers_used,
                miller_loops=side_report.miller_loops,
                final_exponentiations=side_report.final_exponentiations,
                prepared_miller_loops=side_report.prepared_miller_loops,
                preparations=side_report.preparations,
                pool_generation=side_report.pool_generation,
                worker_restarts=side_report.worker_restarts,
                concurrent_sides=side_report.concurrent_sides,
            )

        # on_close covers the abandoned-before-started case (the
        # generator's finally only runs once the generator has run).
        return HandleStream(
            run_pooled(), on_close=lambda: service.release_side(side)
        )


#: Engines the planner may pick from, in "prefer the cheaper estimate,
#: break ties towards batched" order.
PLANNER_CANDIDATES = ("serial", "batched", "parallel")


class AutoEngine(ExecutionEngine):
    """The cost-model planner: per side, run the cheapest engine.

    For every candidate side the planner estimates the runtime of each
    candidate engine from the candidate count, the scheme dimension and
    a per-operation cost model (:mod:`repro.bench.costmodel` — default
    models per backend, or a calibrated/custom one), then delegates to
    the winner.  Estimates, inputs, the choice and the side's *observed*
    runtime are recorded in the report so ``ServerStats`` (and the wire
    format) expose why a query ran the way it did.

    Selection is conservative: ``parallel`` must beat ``batched`` by
    the model's margin before it is chosen, so ``auto`` never trades a
    sure thing for pool overhead.  With ``calibrate_online`` (the
    default) the planner also learns from itself: each side's observed
    seconds update a per-engine multiplicative correction
    (:class:`~repro.bench.costmodel.OnlineCalibrator`), so a model
    that's off on this hardware converges after a handful of queries.
    """

    name = "auto"

    def __init__(
        self,
        candidates: tuple[str, ...] = PLANNER_CANDIDATES,
        cost_model=None,
        workers: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        service: ExecutionService | None = None,
        calibrate_online: bool = True,
        calibrator=None,
    ):
        unknown = [c for c in candidates if c not in PLANNER_CANDIDATES]
        if unknown:
            raise QueryError(
                f"unknown planner candidates {unknown}; "
                f"use a subset of {PLANNER_CANDIDATES}"
            )
        if not candidates:
            raise QueryError("planner needs at least one candidate engine")
        self.candidates = tuple(candidates)
        self.cost_model = cost_model
        self.batch_size = batch_size
        if calibrator is None and calibrate_online:
            from repro.bench.costmodel import OnlineCalibrator

            calibrator = OnlineCalibrator()
        self.calibrator = calibrator
        self._engines: dict[str, ExecutionEngine] = {
            "serial": SerialEngine(),
            "batched": BatchedEngine(batch_size),
            "parallel": ParallelEngine(
                workers=workers,
                batch_size=max(1, batch_size // 2),
                service=service,
            ),
        }

    def bind_service(self, service: ExecutionService) -> None:
        self._engines["parallel"].bind_service(service)

    def _model_for(self, backend: BilinearBackend):
        from repro.bench.costmodel import default_engine_cost_model

        if self.cost_model is not None:
            return self.cost_model
        return default_engine_cost_model(backend.name)

    def decrypt_stream(
        self, backend, token_elements, ciphertext_vectors, qos=None
    ):
        from repro.bench.costmodel import choose_engine

        parallel: ParallelEngine = self._engines["parallel"]
        pool_warm = parallel.pool_warm()
        # Price the pool the side would *actually* get: the engine's
        # worker cap further capped by the bound service's size.
        workers = parallel.effective_workers()
        corrections = (
            self.calibrator.corrections() if self.calibrator else None
        )
        # A prepared (warm) table replays stored line coefficients
        # instead of running full Miller loops, so price the side with
        # the model's prepared constant — this is what makes the
        # planner prefer cheaper inline engines once a table is warm.
        prepared_rows = bool(ciphertext_vectors) and all(
            isinstance(row, PreparedRow) for row in ciphertext_vectors
        )
        choice, estimates = choose_engine(
            self._model_for(backend),
            rows=len(ciphertext_vectors),
            dimension=len(token_elements),
            workers=workers,
            batch_size=self.batch_size,
            parallel_batch_size=parallel.batch_size,
            pool_warm=pool_warm,
            allowed=self.candidates,
            corrections=corrections,
            prepared=prepared_rows,
        )
        inner = self._engines[choice].decrypt_stream(
            backend, token_elements, ciphertext_vectors, qos=qos
        )

        def run():
            # Accrue only the time this stream spends producing its own
            # chunks (resume-to-yield).  The pipeline interleaves both
            # sides' streams, so wall-clock from open to exhaustion
            # would charge each side with the other side's work too and
            # bias the calibrator toward ~2x corrections.
            elapsed = 0.0
            while True:
                resumed = time.perf_counter()
                try:
                    chunk = next(inner)
                except StopIteration:
                    elapsed += time.perf_counter() - resumed
                    break
                elapsed += time.perf_counter() - resumed
                yield chunk
            report = inner.report
            report.engine = self.name
            report.selected = choice
            report.planner = {
                "rows": len(ciphertext_vectors),
                "dimension": len(token_elements),
                "workers": workers,
                "pool_warm": pool_warm,
                "prepared_rows": prepared_rows,
                "prepared_miller_loops": report.prepared_miller_loops,
                "chosen": choice,
                "estimates": {
                    name: float(sec) for name, sec in estimates.items()
                },
                "actual_seconds": elapsed,
            }
            if corrections:
                report.planner["corrections"] = dict(corrections)
            # Feed the *uncorrected* model prediction back, so the
            # correction converges on actual/predicted instead of
            # chasing its own output.  Two kinds of sides are not
            # attributable and must not be observed: (a) the parallel
            # engine's inline fallback (pool_generation stays 0 — the
            # model priced a pooled run, reality was single-threaded),
            # and (b) pooled sides that interleaved with another
            # admitted side (concurrent_sides > 1 — the shared poller
            # charges the co-execution wall to whichever side holds
            # the poll, so per-resume accrual splits it arbitrarily).
            unattributable = choice == "parallel" and (
                report.pool_generation == 0 or report.concurrent_sides > 1
            )
            if self.calibrator is not None and not unattributable:
                raw = estimates[choice] / (
                    corrections.get(choice, 1.0) if corrections else 1.0
                )
                self.calibrator.observe(choice, raw, elapsed)
            return report

        return HandleStream(run(), on_close=inner.close)


_ENGINE_FACTORIES = {
    SerialEngine.name: SerialEngine,
    BatchedEngine.name: BatchedEngine,
    ParallelEngine.name: ParallelEngine,
    AutoEngine.name: AutoEngine,
}

ENGINE_NAMES = tuple(_ENGINE_FACTORIES)


#: The default engine: behaviorally identical to the pre-engine code
#: path (one shared final exponentiation per row) plus chunking; the
#: serial engine is the naive ablation baseline, not the default, and
#: ``auto`` (the planner) is opt-in until its models are calibrated on
#: the operator's hardware.
DEFAULT_ENGINE_NAME = BatchedEngine.name


def get_engine(
    engine: ExecutionEngine | str | None,
    service: ExecutionService | None = None,
) -> ExecutionEngine:
    """Resolve an engine choice: an instance, a name, or None (batched).

    ``service`` (when given) is bound to pool-using engines — the
    server passes its own persistent service here so every engine it
    resolves shares one pool.
    """
    if engine is None:
        resolved: ExecutionEngine = BatchedEngine()
    elif isinstance(engine, ExecutionEngine):
        resolved = engine
    else:
        factory = _ENGINE_FACTORIES.get(engine)
        if factory is None:
            raise QueryError(
                f"unknown execution engine {engine!r}; "
                f"use one of {ENGINE_NAMES}"
            )
        resolved = factory()
    if service is not None and hasattr(resolved, "bind_service"):
        resolved.bind_service(service)
    return resolved
