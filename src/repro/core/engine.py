"""Execution engines: how the server turns ciphertexts into handles.

SJ.Dec over a candidate side is the server's hot path — one product of
pairings per row.  The three engines here trade off how that work is
issued against the bilinear backend:

- :class:`SerialEngine` — the naive baseline: one *full pairing per
  vector component* (d Miller loops and d final exponentiations per
  row), combined in GT.  This is the "one pairing at a time" path the
  ablation benchmarks call the naive product of pairings.
- :class:`BatchedEngine` — groups rows into chunks and issues each chunk
  through :meth:`~repro.crypto.backend.BilinearBackend.pair_vectors_batch`,
  so every row costs d Miller loops but only *one* shared final
  exponentiation — the multi-pairing optimization applied to the join.
- :class:`ParallelEngine` — fans the batches out across a
  ``multiprocessing`` worker pool.  Chunks are pulled by idle workers
  (``imap_unordered`` with one chunk per pull — chunked work stealing),
  and each worker caches the query token and backend once per side, so
  per-chunk messages carry only ciphertext vectors.

All three produce byte-identical handles: the final exponentiation is a
group homomorphism, so the per-pair product equals the shared-exponent
multi-pairing, and the fast backend's modular arithmetic agrees by
construction.  Engines report their work in an :class:`EngineReport`
that the server merges into :class:`~repro.core.server.ServerStats`.
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.crypto.backend import BilinearBackend
from repro.errors import QueryError

#: Rows per chunk when a batching engine is built without an explicit size.
DEFAULT_BATCH_SIZE = 64


@dataclass
class EngineReport:
    """What one engine invocation did, for ``ServerStats`` accounting."""

    engine: str
    batches: int = 0
    max_batch_size: int = 0
    workers: int = 1
    miller_loops: int = 0
    final_exponentiations: int = 0


class ExecutionEngine(ABC):
    """Strategy for decrypting one side's candidate rows into handles."""

    name: str

    @abstractmethod
    def decrypt_handles(
        self,
        backend: BilinearBackend,
        token_elements: Sequence,
        ciphertext_vectors: Sequence[Sequence],
    ) -> tuple[list[bytes], EngineReport]:
        """Handles (canonical bytes) for each ciphertext vector, in order."""


def _chunked(items: Sequence, size: int) -> list[tuple[int, Sequence]]:
    """``(start_offset, slice)`` chunks covering ``items`` in order."""
    return [(i, items[i : i + size]) for i in range(0, len(items), size)]


class SerialEngine(ExecutionEngine):
    """One full pairing per vector component, one row at a time.

    Every component pair costs a Miller loop *and* a final
    exponentiation; the GT partial products are combined with the group
    operation.  On the fast backend the arithmetic (and therefore the
    handle bytes) is identical to the batched path — only the modeled
    operation counts differ.
    """

    name = "serial"

    def decrypt_handles(self, backend, token_elements, ciphertext_vectors):
        snapshot = backend.ops.snapshot()
        handles = []
        for ciphertext in ciphertext_vectors:
            accumulator = backend.gt_identity()
            for g1, g2 in zip(token_elements, ciphertext):
                accumulator = backend.gt_mul(accumulator, backend.pair(g1, g2))
            handles.append(accumulator.to_bytes())
        delta = backend.ops.since(snapshot)
        report = EngineReport(
            engine=self.name,
            batches=len(ciphertext_vectors),
            max_batch_size=1 if ciphertext_vectors else 0,
            workers=1,
            miller_loops=delta.miller_loops,
            final_exponentiations=delta.final_exponentiations,
        )
        return handles, report


class BatchedEngine(ExecutionEngine):
    """Chunked multi-pairing decryption with shared final exponentiations."""

    name = "batched"

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE):
        if batch_size < 1:
            raise QueryError("batch size must be at least 1")
        self.batch_size = batch_size

    def decrypt_handles(self, backend, token_elements, ciphertext_vectors):
        snapshot = backend.ops.snapshot()
        chunks = _chunked(ciphertext_vectors, self.batch_size)
        handles = []
        for _, chunk in chunks:
            gts = backend.pair_vectors_batch(token_elements, chunk)
            handles.extend(gt.to_bytes() for gt in gts)
        delta = backend.ops.since(snapshot)
        report = EngineReport(
            engine=self.name,
            batches=len(chunks),
            max_batch_size=max((len(c) for _, c in chunks), default=0),
            workers=1,
            miller_loops=delta.miller_loops,
            final_exponentiations=delta.final_exponentiations,
        )
        return handles, report


# Per-worker cache, set once per side by the pool initializer: the query
# token and the backend are shipped a single time instead of with every
# chunk, and the worker-local op counter starts from a known state.
_WORKER_BACKEND: BilinearBackend | None = None
_WORKER_TOKEN: Sequence | None = None


def _init_worker(backend: BilinearBackend, token_elements: Sequence) -> None:
    global _WORKER_BACKEND, _WORKER_TOKEN
    _WORKER_BACKEND = backend
    _WORKER_TOKEN = token_elements
    backend.ops.reset()


def _decrypt_chunk(task):
    """Decrypt one chunk in a worker; returns its offset, handles and cost."""
    start, ciphertext_vectors = task
    snapshot = _WORKER_BACKEND.ops.snapshot()
    gts = _WORKER_BACKEND.pair_vectors_batch(_WORKER_TOKEN, ciphertext_vectors)
    delta = _WORKER_BACKEND.ops.since(snapshot)
    return (
        start,
        [gt.to_bytes() for gt in gts],
        (delta.miller_loops, delta.final_exponentiations),
    )


class ParallelEngine(ExecutionEngine):
    """Batched decryption fanned out over a multiprocessing pool.

    Sides with at most one chunk's worth of rows run inline (pool
    startup would dominate); larger sides are split into
    ``batch_size``-row chunks that idle workers pull one at a time.
    """

    name = "parallel"

    def __init__(
        self,
        workers: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE // 2,
    ):
        if workers is not None and workers < 1:
            raise QueryError("worker count must be at least 1")
        if batch_size < 1:
            raise QueryError("batch size must be at least 1")
        self.workers = workers if workers is not None else max(
            2, os.cpu_count() or 1
        )
        self.batch_size = batch_size
        self._inline = BatchedEngine(batch_size)

    def decrypt_handles(self, backend, token_elements, ciphertext_vectors):
        if self.workers == 1 or len(ciphertext_vectors) <= self.batch_size:
            handles, report = self._inline.decrypt_handles(
                backend, token_elements, ciphertext_vectors
            )
            report.engine = self.name
            return handles, report

        chunks = _chunked(ciphertext_vectors, self.batch_size)
        report = EngineReport(
            engine=self.name,
            batches=len(chunks),
            max_batch_size=max(len(c) for _, c in chunks),
            workers=min(self.workers, len(chunks)),
        )
        ordered: list[tuple[int, list[bytes]]] = []
        with multiprocessing.Pool(
            processes=report.workers,
            initializer=_init_worker,
            initargs=(backend, token_elements),
        ) as pool:
            for start, handles, (millers, final_exps) in pool.imap_unordered(
                _decrypt_chunk, chunks, chunksize=1
            ):
                ordered.append((start, handles))
                report.miller_loops += millers
                report.final_exponentiations += final_exps
        ordered.sort(key=lambda item: item[0])
        flat = [handle for _, handles in ordered for handle in handles]
        return flat, report


_ENGINE_FACTORIES = {
    SerialEngine.name: SerialEngine,
    BatchedEngine.name: BatchedEngine,
    ParallelEngine.name: ParallelEngine,
}

ENGINE_NAMES = tuple(_ENGINE_FACTORIES)


#: The default engine: behaviorally identical to the pre-engine code
#: path (one shared final exponentiation per row) plus chunking; the
#: serial engine is the naive ablation baseline, not the default.
DEFAULT_ENGINE_NAME = BatchedEngine.name


def get_engine(engine: ExecutionEngine | str | None) -> ExecutionEngine:
    """Resolve an engine choice: an instance, a name, or None (batched)."""
    if engine is None:
        return BatchedEngine()
    if isinstance(engine, ExecutionEngine):
        return engine
    factory = _ENGINE_FACTORIES.get(engine)
    if factory is None:
        raise QueryError(
            f"unknown execution engine {engine!r}; use one of {ENGINE_NAMES}"
        )
    return factory()
