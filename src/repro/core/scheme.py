"""The Secure Join scheme: SJ.Setup, SJ.Enc, SJ.TokenGen, SJ.Dec, SJ.Match.

This is the paper's contribution (Section 4.3), implemented on top of
the modified function-hiding IPE and the polynomial selection encoding.
The scheme is generic over the bilinear backend, so the exact same code
runs on the real BN254 pairing and on the fast exponent backend.

Responsibility split (matching Figure 1):

- *client, upload phase*: :meth:`SecureJoinScheme.setup`,
  :meth:`SecureJoinScheme.encrypt_row`,
- *client, query phase*: :meth:`SecureJoinScheme.new_query_key`,
  :meth:`SecureJoinScheme.token`,
- *server, query phase*: :meth:`SecureJoinScheme.decrypt`,
  :meth:`SecureJoinScheme.match` (both need only public parameters).
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.encoding import VectorLayout
from repro.crypto.backend import BilinearBackend, GTElement, get_backend
from repro.crypto.ipe import IPEMasterKey, ModifiedIPEScheme
from repro.crypto.hashing import Value
from repro.errors import SchemeError


@dataclass(frozen=True)
class SecureJoinParams:
    """Public parameters: the vector layout (m, t) and the backend name."""

    num_attributes: int
    in_clause_limit: int
    backend_name: str = "fast"

    @property
    def layout(self) -> VectorLayout:
        return VectorLayout(self.num_attributes, self.in_clause_limit)

    @property
    def dimension(self) -> int:
        return self.layout.dimension


@dataclass(frozen=True)
class SJMasterKey:
    """The client's master secret: params plus the IPE matrices."""

    params: SecureJoinParams
    ipe: IPEMasterKey


@dataclass(frozen=True)
class SJRowCiphertext:
    """``C_r = g2^{w_r B*}`` — one encrypted row (upload phase)."""

    elements: tuple

    def __len__(self) -> int:
        return len(self.elements)


@dataclass(frozen=True)
class SJToken:
    """``Tk = g1^{v B}`` — one table's token for one query."""

    elements: tuple

    def __len__(self) -> int:
        return len(self.elements)


class SecureJoinScheme:
    """The five algorithms of Secure Join, generic over the backend."""

    def __init__(
        self,
        params: SecureJoinParams,
        backend: BilinearBackend | None = None,
        rng: random.Random | None = None,
    ):
        self.params = params
        self.backend = (
            backend if backend is not None else get_backend(params.backend_name)
        )
        self.rng = rng if rng is not None else random.Random()
        self._layout = params.layout
        self._ipe = ModifiedIPEScheme(
            self._layout.dimension, self.backend, self.rng
        )

    # -- client, upload phase ----------------------------------------------
    def setup(self) -> SJMasterKey:
        """SJ.Setup: sample the bilinear group matrices ``(B, B*)``."""
        return SJMasterKey(self.params, self._ipe.setup())

    def encrypt_row(
        self,
        msk: SJMasterKey,
        join_value: Value,
        attribute_values: Sequence[Value],
    ) -> SJRowCiphertext:
        """SJ.Enc: encrypt one row's join value and attribute powers."""
        self._check_msk(msk)
        w = self._layout.row_vector(
            join_value, attribute_values, self.backend.order, self.rng
        )
        return SJRowCiphertext(self._ipe.encrypt(msk.ipe, w))

    # -- client, query phase ---------------------------------------------
    def new_query_key(self) -> int:
        """A fresh symmetric query key ``k <- Z_q \\ {0}``.

        Using a *fresh* key per query is what prevents super-additive
        leakage: handles from different queries live under different keys.
        """
        return self.rng.randrange(1, self.backend.order)

    def token(
        self,
        msk: SJMasterKey,
        selections: Mapping[int, Sequence[Value]],
        query_key: int,
    ) -> SJToken:
        """SJ.TokenGen: encode the IN clauses as polynomials, emit ``Tk``."""
        self._check_msk(msk)
        q = self.backend.order
        polynomials = self._layout.selection_polynomials(selections, q, self.rng)
        v = self._layout.token_vector(query_key, polynomials, q, self.rng)
        return SJToken(self._ipe.keygen(msk.ipe, v))

    # -- server, query phase ---------------------------------------------
    def decrypt(self, token: SJToken, ciphertext: SJRowCiphertext) -> GTElement:
        """SJ.Dec: ``D = e(Tk, C)`` — the row's match handle for this query."""
        if len(token) != self.params.dimension:
            raise SchemeError(
                f"token dimension {len(token)} != scheme dimension "
                f"{self.params.dimension}"
            )
        if len(ciphertext) != self.params.dimension:
            raise SchemeError(
                f"ciphertext dimension {len(ciphertext)} != scheme dimension "
                f"{self.params.dimension}"
            )
        return self._ipe.decrypt(token.elements, ciphertext.elements)

    @staticmethod
    def match(d_a: GTElement, d_b: GTElement) -> bool:
        """SJ.Match: the rows join iff their handles coincide."""
        return d_a == d_b

    # -- internal ------------------------------------------------------------
    def _check_msk(self, msk: SJMasterKey) -> None:
        if msk.params != self.params:
            raise SchemeError(
                "master key was generated under different parameters"
            )
