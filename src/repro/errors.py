"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle all library failures.  Subsystems get
their own subclass so tests and applications can discriminate precisely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CryptoError(ReproError):
    """Base class for errors in the cryptographic substrate."""


class FieldError(CryptoError):
    """Invalid field operation (e.g. inverting zero, mixed moduli)."""


class CurveError(CryptoError):
    """Invalid curve operation (point not on curve, wrong subgroup...)."""


class PairingError(CryptoError):
    """The pairing received inputs it cannot process."""


class MatrixError(CryptoError):
    """Invalid matrix operation (singular matrix, shape mismatch...)."""


class IPEError(CryptoError):
    """Errors from the function-hiding inner-product encryption scheme."""


class SchemeError(ReproError):
    """Errors from the Secure Join scheme (bad token, dimension mismatch)."""


class SchemaError(ReproError):
    """Relational schema violations (unknown column, arity mismatch...)."""


class QueryError(ReproError):
    """Malformed or unsupported queries (including SQL parse errors)."""


class DeadlineError(QueryError):
    """A query exceeded its deadline and was cancelled mid-execution."""


class ShardUnavailableError(QueryError):
    """A shard died (pool closed, endpoint unreachable) mid-query.

    Raised by the shard coordinator when one shard of a scatter-gather
    join cannot complete its side streams; the coordinator releases the
    surviving shards' admissions before raising."""


class NetworkError(ReproError):
    """Transport-layer failures in the network service (connection lost,
    oversized message, malformed framing).  Distinct from
    :class:`SchemeError`, which covers the wire *codec*: a payload that
    arrived intact but does not decode."""


class LeakageError(ReproError):
    """Errors from the leakage analyzer (inconsistent traces...)."""


class BenchmarkError(ReproError):
    """Errors from the benchmark harness (bad experiment parameters)."""
