"""The network service layer: the wire format over real sockets.

Everything below :mod:`repro.net` exists so the client and the
untrusted server can run in *separate processes* exchanging nothing but
byte strings — the paper's deployment model.  The module speaks the v5
wire format of :mod:`repro.store.wire` over TCP with length-prefixed
messages:

- :class:`~repro.net.server.JoinServiceServer` — a thread-per-connection
  endpoint that decodes join queries, runs
  :meth:`~repro.core.server.SecureJoinServer.stream_join`, and emits the
  chunked result stream (stream-header / match-batch / final frames) so
  remote clients receive matches while SJ.Dec is still running;
- :class:`~repro.net.client.RemoteJoinClient` — consumes the frame
  stream with bounded buffering (client-side backpressure) and
  reassembles the canonical result;
- ``python -m repro.net`` — a standalone server process with graceful
  SIGTERM drain;
- :class:`~repro.net.shard.ShardServiceServer` /
  :class:`~repro.net.shard.RemoteShard` — one shard of a partitioned
  store behind a socket and its coordinator-side proxy (scatter-chunk
  / scatter-final frames), so a
  :class:`~repro.shard.ShardCoordinator` mixes local and remote
  shards freely.

Exposure policy (after the FateForger encrypted-deployment notes): only
the query/result API is externally consumable.  A remote peer can send
join queries (with the advisory ``engine_hint`` gated by the operator's
``hint_engines`` allowlist, and per-query ``priority`` / ``deadline``
QoS) and receive result frames — nothing else.  Pool controls, engine
overrides, store mutation and service internals are never reachable
from the socket.
"""

from repro.net.client import RemoteJoinClient
from repro.net.protocol import (
    MAX_MESSAGE_SIZE,
    recv_message,
    send_message,
)
from repro.net.server import JoinServiceServer
from repro.net.shard import (
    RemoteShard,
    ShardServiceServer,
    coordinator_from_shard_map,
)

__all__ = [
    "JoinServiceServer",
    "MAX_MESSAGE_SIZE",
    "RemoteJoinClient",
    "RemoteShard",
    "ShardServiceServer",
    "coordinator_from_shard_map",
    "recv_message",
    "send_message",
]
