"""Standalone join service process: ``python -m repro.net``.

Builds a :class:`~repro.core.server.SecureJoinServer` from public
parameters, loads encrypted tables from disk, and serves the v4 frame
stream until SIGTERM/SIGINT, then drains gracefully: stop accepting,
finish in-flight query streams, close the worker pool, exit 0.

Example::

    python -m repro.net \\
        --params '{"num_attributes": 2, "in_clause_limit": 4}' \\
        --table customers.rprot --table orders.rprot \\
        --port 0 --port-file /tmp/join-service.port

With ``--port 0`` the OS picks a free port; ``--port-file`` publishes
the actual ``host:port`` for clients (written atomically, so a watcher
never reads a partial line).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading

from repro.bench.costmodel import EngineCostModel
from repro.core.engine import AutoEngine
from repro.core.scheme import SecureJoinParams
from repro.core.server import SecureJoinServer
from repro.errors import BenchmarkError
from repro.net.server import JoinServiceServer
from repro.store.tables import load_encrypted_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Serve encrypted secure joins over TCP.",
    )
    parser.add_argument(
        "--params",
        required=True,
        help="SecureJoinParams as JSON, e.g. "
        '\'{"num_attributes": 2, "in_clause_limit": 4}\'',
    )
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="PATH",
        help="encrypted table file to load and store (repeatable)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 = OS-assigned (default)"
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound host:port here once listening",
    )
    parser.add_argument(
        "--engine",
        default=None,
        help="default execution engine (serial/batched/parallel/auto)",
    )
    parser.add_argument(
        "--hint-engines",
        default="serial,batched",
        help="comma-separated allowlist of client engine hints "
        "(default: serial,batched — pool engines need operator opt-in)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker pool size"
    )
    parser.add_argument(
        "--cost-model",
        default=None,
        metavar="PATH",
        help="JSON cost model from python -m repro.bench --calibrate-out; "
        "prices the auto planner with this machine's measured constants",
    )
    parser.add_argument(
        "--algorithm", default="hash", help="join matcher (hash/sort)"
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to let in-flight streams finish on shutdown",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        params_dict = json.loads(args.params)
    except ValueError as error:
        print(f"bad --params JSON: {error}", file=sys.stderr)
        return 2
    if not isinstance(params_dict, dict):
        print("bad --params JSON: expected an object", file=sys.stderr)
        return 2
    try:
        params = SecureJoinParams(**params_dict)
    except TypeError as error:
        print(f"bad --params fields: {error}", file=sys.stderr)
        return 2
    hint_engines = tuple(
        name.strip()
        for name in args.hint_engines.split(",")
        if name.strip()
    )
    engine: str | AutoEngine | None = args.engine
    if args.cost_model is not None:
        try:
            cost_model = EngineCostModel.load(args.cost_model)
        except BenchmarkError as error:
            print(f"bad --cost-model: {error}", file=sys.stderr)
            return 2
        if engine not in (None, "auto"):
            print(
                "--cost-model requires the auto engine "
                f"(got --engine {engine})",
                file=sys.stderr,
            )
            return 2
        engine = AutoEngine(cost_model=cost_model)
    join_server = SecureJoinServer(
        params,
        engine=engine,
        hint_engines=hint_engines,
        workers=args.workers,
    )
    for path in args.table:
        join_server.store(
            load_encrypted_table(path, join_server.scheme.backend)
        )
    service = JoinServiceServer(
        join_server,
        host=args.host,
        port=args.port,
        algorithm=args.algorithm,
        drain_timeout=args.drain_timeout,
    )
    host, port = service.start()
    if args.port_file:
        temp_path = f"{args.port_file}.tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(f"{host}:{port}\n")
        os.replace(temp_path, args.port_file)
    print(f"repro.net serving on {host}:{port}", file=sys.stderr, flush=True)

    stop = threading.Event()

    def handle_signal(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)
    stop.wait()
    print("repro.net draining...", file=sys.stderr, flush=True)
    service.shutdown(drain=True)
    print(
        f"repro.net stopped after {service.queries_served} queries",
        file=sys.stderr,
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
