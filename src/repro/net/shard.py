"""Remote shards: the scatter half of a join served over TCP.

A :class:`ShardServiceServer` wraps one :class:`~repro.shard.LocalShard`
behind a socket.  Every query it receives *is* a scatter request — a
shard endpoint has no other contract, so no wire flag is needed: the
response stream is a stream-header frame, one **scatter-chunk frame**
per decrypted handle chunk (global row indices + handles + payloads,
either side, in completion order), and one **scatter-final frame**
carrying the shard's candidate counts and per-side engine reports.

:class:`RemoteShard` is the coordinator-side proxy: it satisfies the
same source protocol as a local shard, so
:class:`~repro.shard.ShardCoordinator` mixes in-process and remote
shards freely.  One TCP connection per query, opened when the
coordinator scatters (that is the remote co-admission) and closed with
the stream — abandoning a merge mid-flight drops the socket, which the
shard's handler notices, releasing the shard's pool admissions.

Exposure policy is inherited from :mod:`repro.net`: a shard socket can
reach exactly ``decode_join_query`` → ``open_scatter_sources``; store
mutation, pool controls and the observation log are not on the wire.
"""

from __future__ import annotations

import socket

from repro.core.client import EncryptedJoinQuery
from repro.crypto.backend import BilinearBackend
from repro.errors import NetworkError, ReproError, ShardUnavailableError
from repro.net.client import _error_from_frame
from repro.net.protocol import MAX_MESSAGE_SIZE, recv_message, send_message
from repro.net.server import JoinServiceServer
from repro.shard.coordinator import (
    LocalShard,
    ScatterOutcome,
    ShardCoordinator,
)
from repro.store.wire import (
    ErrorFrame,
    ScatterChunkFrame,
    ScatterFinalFrame,
    ShardMapFrame,
    StreamHeaderFrame,
    decode_frame,
    decode_join_query,
    encode_error_frame,
    encode_join_query,
    encode_scatter_chunk,
    encode_scatter_final,
    encode_stream_header,
)


class ShardServiceServer(JoinServiceServer):
    """A :class:`JoinServiceServer` whose queries scatter, not join.

    Reuses the whole connection/drain machinery of the join service;
    only the per-query handler differs: instead of running the local
    match pipeline it streams the shard's raw decrypt events so the
    coordinator can match centrally.  ``engine`` (a name, resolved
    against this shard's own pool) applies to every scatter it serves.
    """

    def __init__(
        self,
        shard: LocalShard,
        host: str = "127.0.0.1",
        port: int = 0,
        engine: str | None = None,
        **kwargs,
    ):
        super().__init__(shard.server, host=host, port=port, **kwargs)
        self.shard = shard
        self.engine = engine

    def _serve_query(self, sock: socket.socket, request: bytes) -> None:
        backend = self.join_server.scheme.backend
        try:
            query = decode_join_query(request, backend)
            sources = self.shard.open_scatter_sources(
                query, engine=self.engine
            )
        except ReproError as error:
            send_message(
                sock, encode_error_frame(type(error).__name__, str(error))
            )
            return
        try:
            send_message(
                sock,
                encode_stream_header(
                    query.query_id, query.left_table, query.right_table
                ),
            )
            try:
                active = list(sources)
                turn = 0
                while active:
                    source = active[turn % len(active)]
                    try:
                        side, items = next(source)
                    except StopIteration:
                        active.remove(source)
                        continue
                    send_message(sock, encode_scatter_chunk(side, items))
                    turn += 1
            except ReproError as error:
                send_message(
                    sock,
                    encode_error_frame(type(error).__name__, str(error)),
                )
                return
            final = ScatterFinalFrame(candidates_left=0, candidates_right=0)
            for source in sources:
                if source.side == "left":
                    final.candidates_left = len(source.rows)
                    final.left_report = source.outcome
                else:
                    final.candidates_right = len(source.rows)
                    final.right_report = source.outcome
            send_message(sock, encode_scatter_final(final))
        finally:
            # Covers transport-failure exits: a dropped coordinator
            # socket releases this shard's pool admissions.
            for source in sources:
                source.close()


class RemoteShard:
    """Coordinator-side proxy for one :class:`ShardServiceServer`.

    Interchangeable with :class:`~repro.shard.LocalShard` inside a
    :class:`~repro.shard.ShardCoordinator`: ``open_scatter_sources``
    returns one event source covering both sides (the shard multiplexes
    them on one stream).  Candidate counts and engine reports arrive in
    the scatter-final frame, so they fold into the coordinator's stats
    exactly like a local shard's.  The partition layout of a remote
    shard is enforced server-side (its ``LocalShard.store`` did it);
    the coordinator's layout validation covers local shards only.
    """

    #: Remote shards have no locally known layout / per-side candidate
    #: counts up front; the coordinator treats ``None`` as "unknown".
    layout = None

    def __init__(
        self,
        host: str,
        port: int,
        backend: BilinearBackend,
        name: str | None = None,
        max_message_size: int = MAX_MESSAGE_SIZE,
        connect_timeout: float = 10.0,
    ):
        self.host = host
        self.port = port
        self.backend = backend
        self.name = name
        self.max_message_size = max_message_size
        self.connect_timeout = connect_timeout
        self._sources: set["_RemoteScatterSource"] = set()

    @property
    def backend_name(self) -> str:
        return self.backend.name

    def describe(self) -> str:
        return self.name or f"{self.host}:{self.port}"

    def open_scatter_sources(
        self,
        query: EncryptedJoinQuery,
        engine=None,
        qos=None,
    ) -> list["_RemoteScatterSource"]:
        """Connect, send the query (the remote co-admission), and return
        the single merged event source.  ``engine``/``qos`` are ignored:
        the shard endpoint picks its own engine, and the query already
        carries its QoS fields — each shard stamps the relative deadline
        against its own clock."""
        source = _RemoteScatterSource(self, query)
        self._sources.add(source)
        return [source]

    def close(self) -> None:
        """Drop every in-flight scatter connection.  Idempotent."""
        for source in list(self._sources):
            source.close()


def coordinator_from_shard_map(
    shard_map: ShardMapFrame,
    backend: BilinearBackend,
    max_message_size: int = MAX_MESSAGE_SIZE,
    connect_timeout: float = 10.0,
) -> ShardCoordinator:
    """Bootstrap a coordinator from a decoded ``shard_map`` frame.

    The client-side consumer of the v5 shard-map message: one
    :class:`RemoteShard` per listed endpoint, ordered by shard index,
    wrapped in a ready-to-query
    :class:`~repro.shard.ShardCoordinator`.  The frame's layout
    (count, seed, tables) was validated by the wire decoder; per-table
    layout agreement is enforced server-side by each shard's own store.
    Closing the returned coordinator closes every remote proxy.
    """
    shards = [
        RemoteShard(
            host,
            port,
            backend,
            name=f"shard-{index}@{host}:{port}",
            max_message_size=max_message_size,
            connect_timeout=connect_timeout,
        )
        for index, (host, port) in enumerate(shard_map.endpoints)
    ]
    return ShardCoordinator(shards)


class _RemoteScatterSource:
    """One scatter stream from one remote shard, as a merge source.

    Yields ``(side, items)`` events decoded from scatter-chunk frames;
    sets ``outcome`` (a :class:`~repro.shard.ScatterOutcome`) when the
    scatter-final frame arrives.  Transport loss at any point raises
    :class:`~repro.errors.ShardUnavailableError`; server-reported
    failures re-raise as their local exception type (so a remote
    deadline is still a ``DeadlineError``).
    """

    #: No single side / locally known candidate rows — see RemoteShard.
    side = None
    rows = None

    def __init__(self, shard: RemoteShard, query: EncryptedJoinQuery):
        self.shard = shard
        self.query = query
        self.outcome: ScatterOutcome | None = None
        self._sock: socket.socket | None = None
        self._got_header = False
        try:
            self._sock = socket.create_connection(
                (shard.host, shard.port), timeout=shard.connect_timeout
            )
            self._sock.settimeout(None)
            try:
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError:  # pragma: no cover - non-TCP test doubles
                pass
            send_message(self._sock, encode_join_query(query, shard.backend))
        except (OSError, NetworkError) as error:
            self.close()
            raise ShardUnavailableError(
                f"shard {shard.describe()} unreachable: {error}"
            ) from error

    def __iter__(self) -> "_RemoteScatterSource":
        return self

    def __next__(self):
        if self.outcome is not None or self._sock is None:
            raise StopIteration
        while True:
            try:
                data = recv_message(self._sock, self.shard.max_message_size)
            except (OSError, NetworkError) as error:
                self._fail(f"transport failed mid-scatter: {error}", error)
            if data is None:
                self._fail("closed the connection mid-scatter", None)
            frame = decode_frame(data)
            if isinstance(frame, ErrorFrame):
                self.close()
                raise _error_from_frame(frame)
            if not self._got_header:
                if not isinstance(frame, StreamHeaderFrame):
                    self._fail(
                        "did not open with a stream-header frame "
                        f"(got {type(frame).__name__})",
                        None,
                    )
                if frame.query_id != self.query.query_id:
                    self._fail(
                        f"answered query {frame.query_id}, expected "
                        f"{self.query.query_id}",
                        None,
                    )
                self._got_header = True
                continue
            if isinstance(frame, ScatterChunkFrame):
                return frame.side, frame.items
            if isinstance(frame, ScatterFinalFrame):
                self.outcome = ScatterOutcome(
                    candidates_left=frame.candidates_left,
                    candidates_right=frame.candidates_right,
                    left_report=frame.left_report,
                    right_report=frame.right_report,
                )
                self.close()
                raise StopIteration
            self._fail(
                f"sent an unexpected mid-scatter {type(frame).__name__}",
                None,
            )

    def _fail(self, message: str, cause: Exception | None):
        self.close()
        raise ShardUnavailableError(
            f"shard {self.shard.describe()} {message}"
        ) from cause

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self.shard._sources.discard(self)


__all__ = [
    "RemoteShard",
    "ShardServiceServer",
    "coordinator_from_shard_map",
]
