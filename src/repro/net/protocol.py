"""Length-prefixed message framing over a stream socket.

One message = a big-endian u32 length followed by that many payload
bytes.  The payload is always a complete :mod:`repro.store.wire`
encoding (a query, a result, or one stream frame), so the codec layer
never sees a partial read.

The length prefix is wire-supplied and therefore untrusted: it is
checked against the receiver's limit *before* any allocation, so a
hostile peer cannot make the process reserve gigabytes with four bytes.
Transport failures raise :class:`~repro.errors.NetworkError`; codec
failures (a complete message that does not decode) stay
:class:`~repro.errors.SchemeError` territory.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import NetworkError

#: Default per-message size limit (both directions).  Large enough for
#: any realistic query or result chunk, small enough that a hostile
#: length prefix cannot commit the receiver to an absurd allocation.
MAX_MESSAGE_SIZE = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")
_RECV_CHUNK = 1 << 16


def send_message(sock: socket.socket, payload: bytes) -> None:
    """Send one length-prefixed message."""
    if len(payload) > 0xFFFFFFFF:
        raise NetworkError(
            f"message of {len(payload)} bytes exceeds the u32 length prefix"
        )
    try:
        sock.sendall(_LENGTH.pack(len(payload)) + payload)
    except OSError as error:
        raise NetworkError(f"send failed: {error}") from error


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF before any byte."""
    chunks: list[bytes] = []
    received = 0
    while received < n:
        try:
            chunk = sock.recv(min(n - received, _RECV_CHUNK))
        except OSError as error:
            raise NetworkError(f"receive failed: {error}") from error
        if not chunk:
            if received == 0:
                return None
            raise NetworkError(
                f"connection closed mid-message ({received}/{n} bytes)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket, max_size: int = MAX_MESSAGE_SIZE
) -> bytes | None:
    """Receive one length-prefixed message.

    Returns ``None`` on a clean EOF at a message boundary (the peer
    closed between messages); raises :class:`NetworkError` on EOF
    mid-message or a length prefix beyond ``max_size``.
    """
    head = _recv_exact(sock, _LENGTH.size)
    if head is None:
        return None
    (length,) = _LENGTH.unpack(head)
    if length > max_size:
        raise NetworkError(
            f"incoming message claims {length} bytes, over the "
            f"{max_size}-byte limit"
        )
    if length == 0:
        return b""
    body = _recv_exact(sock, length)
    if body is None:
        raise NetworkError("connection closed mid-message (0 body bytes)")
    return body
