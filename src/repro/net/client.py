"""The remote join client: frame-stream consumption with backpressure.

:class:`RemoteJoinClient` owns one TCP connection to a
:class:`~repro.net.server.JoinServiceServer`.  Queries are encoded with
the v4 wire format; the response is consumed as a *stream*:
:meth:`RemoteJoinClient.stream_join` yields each
:class:`~repro.core.server.MatchBatch` as its frame arrives — matched
rows reach the caller while the server's SJ.Dec is still running — and
returns the reassembled canonical
:class:`~repro.core.server.EncryptedJoinResult` as the generator's
value, exactly like the in-process
:meth:`~repro.core.server.SecureJoinServer.stream_join`.

Backpressure: a reader thread pulls frames off the socket into a
*bounded* buffer (``max_buffered_batches``).  When the consumer falls
behind, the buffer fills and the reader stops pulling; the kernel
receive window then fills and the server's send blocks — flow control
end to end, so a slow consumer never forces the client to buffer an
unbounded result.
"""

from __future__ import annotations

import queue
import socket
import threading

from repro.core.client import EncryptedChainQuery, EncryptedJoinQuery
from repro.core.server import (
    EncryptedChainResult,
    EncryptedJoinResult,
    MatchBatch,
)
from repro.crypto.backend import BilinearBackend
from repro.errors import NetworkError, QueryError, ReproError
from repro.net.protocol import MAX_MESSAGE_SIZE, recv_message, send_message
from repro.store.wire import (
    ChainBatchFrame,
    ChainFinalFrame,
    ChainReassembler,
    ErrorFrame,
    FinalFrame,
    MatchBatchFrame,
    StreamHeaderFrame,
    StreamReassembler,
    decode_frame,
    encode_chain_query,
    encode_join_query,
)

#: How many decoded frames the reader thread may buffer ahead of the
#: consumer before it stops pulling from the socket.
DEFAULT_BUFFERED_BATCHES = 8


def _error_from_frame(frame: ErrorFrame) -> ReproError:
    """Map a server error frame back to the closest local exception."""
    import repro.errors as errors_module

    exc_type = getattr(errors_module, frame.error_type, None)
    if not (
        isinstance(exc_type, type) and issubclass(exc_type, ReproError)
    ):
        exc_type = QueryError
    return exc_type(f"server: {frame.message}")


class RemoteJoinClient:
    """One connection to a join service; one streamed query at a time."""

    def __init__(
        self,
        host: str,
        port: int,
        backend: BilinearBackend,
        max_buffered_batches: int = DEFAULT_BUFFERED_BATCHES,
        max_message_size: int = MAX_MESSAGE_SIZE,
        connect_timeout: float = 10.0,
    ):
        if max_buffered_batches < 1:
            raise NetworkError("max_buffered_batches must be at least 1")
        self.backend = backend
        self.max_buffered_batches = max_buffered_batches
        self.max_message_size = max_message_size
        self._sock: socket.socket | None = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(None)
        try:
            # The query is one small message the server waits on; Nagle
            # would hold it hostage to the previous stream's ACKs.
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass
        self._busy = False
        self._lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Close the connection.  Idempotent."""
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass

    @property
    def closed(self) -> bool:
        return self._sock is None

    def __enter__(self) -> "RemoteJoinClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries ----------------------------------------------------------
    def stream_join(self, query: EncryptedJoinQuery):
        """Run a join remotely; a generator of streamed match batches.

        Yields each :class:`MatchBatch` as its frame arrives and returns
        the reassembled canonical :class:`EncryptedJoinResult` as the
        generator's value (``StopIteration.value``).  Server-side
        failures re-raise locally as the matching
        :class:`~repro.errors.ReproError` subclass (e.g. a
        ``DeadlineError`` for a cancelled past-deadline query).

        Abandoning the generator mid-stream closes the connection (the
        socket carries undelivered frames that can no longer be
        resynchronized) — use one client per abandoned stream, or drain.
        """
        return (
            yield from self._stream_query(
                encode_join_query(query, self.backend),
                query.query_id,
                MatchBatchFrame,
                FinalFrame,
                StreamReassembler(),
            )
        )

    def stream_chain(self, query: EncryptedChainQuery):
        """Run a multi-way chain join remotely; a generator.

        Yields each :class:`~repro.core.server.ChainMatchBatch` as its
        chain-batch frame arrives and returns the reassembled canonical
        :class:`~repro.core.server.EncryptedChainResult` as the
        generator's value — the remote mirror of the in-process
        :meth:`~repro.core.server.SecureJoinServer.stream_chain`, with
        the same abandonment semantics as :meth:`stream_join`.
        """
        return (
            yield from self._stream_query(
                encode_chain_query(query, self.backend),
                query.query_id,
                ChainBatchFrame,
                ChainFinalFrame,
                ChainReassembler(),
            )
        )

    def _stream_query(
        self, request, query_id, batch_type, final_type, reassembler
    ):
        """The shared frame-stream drive behind both query kinds."""
        with self._lock:
            if self._sock is None:
                raise NetworkError("client is closed")
            if self._busy:
                raise NetworkError(
                    "a streamed query is already in flight on this "
                    "connection"
                )
            self._busy = True
            sock = self._sock
        completed = False
        frames: queue.Queue = queue.Queue(maxsize=self.max_buffered_batches)
        abandoned = threading.Event()

        def put(item) -> None:
            # Bounded put that gives up once the consumer is gone, so an
            # abandoned stream can never wedge the reader thread.
            while not abandoned.is_set():
                try:
                    frames.put(item, timeout=0.1)
                    return
                except queue.Full:
                    continue

        def read_frames() -> None:
            try:
                while not abandoned.is_set():
                    data = recv_message(sock, self.max_message_size)
                    if data is None:
                        put((
                            "error",
                            NetworkError(
                                "server closed the connection mid-stream"
                            ),
                        ))
                        return
                    frame = decode_frame(data)
                    put(("frame", frame))
                    if isinstance(frame, (final_type, ErrorFrame)):
                        return
            except ReproError as error:
                put(("error", error))

        reader = threading.Thread(
            target=read_frames, name="repro-net-reader", daemon=True
        )
        try:
            send_message(sock, request)
            reader.start()
            got_header = False
            while True:
                kind, payload = frames.get()
                if kind == "error":
                    raise payload
                frame = payload
                if isinstance(frame, ErrorFrame):
                    # An error frame terminates the response cleanly;
                    # the connection stays usable for the next query.
                    completed = True
                    raise _error_from_frame(frame)
                if not got_header:
                    if not isinstance(frame, StreamHeaderFrame):
                        raise NetworkError(
                            "stream did not open with a stream-header "
                            f"frame (got {type(frame).__name__})"
                        )
                    if frame.query_id != query_id:
                        raise NetworkError(
                            f"stream answers query {frame.query_id}, "
                            f"expected {query_id}"
                        )
                    got_header = True
                    continue
                if isinstance(frame, batch_type):
                    reassembler.add_batch(frame.batch)
                    yield frame.batch
                    continue
                if isinstance(frame, final_type):
                    completed = True
                    return reassembler.finish(frame)
                raise NetworkError(
                    f"unexpected mid-stream frame {type(frame).__name__}"
                )
        finally:
            abandoned.set()
            if completed:
                # Reader exited after the terminal frame; the connection
                # is at a message boundary and reusable.
                reader.join(timeout=5.0)
                with self._lock:
                    self._busy = False
            else:
                # Mid-stream abandonment or transport failure: undrained
                # frames make the connection unusable — drop it.  The
                # server's handler notices the close and releases the
                # query's pool admissions.
                self.close()

    def execute_join(self, query: EncryptedJoinQuery) -> EncryptedJoinResult:
        """Run a join remotely, fully materialized.

        Drains :meth:`stream_join` and returns the canonical result —
        the remote mirror of the in-process
        :meth:`~repro.core.server.SecureJoinServer.execute_join`.
        """
        stream = self.stream_join(query)
        while True:
            try:
                next(stream)
            except StopIteration as stop:
                return stop.value

    def execute_chain(
        self, query: EncryptedChainQuery
    ) -> EncryptedChainResult:
        """Run a multi-way chain join remotely, fully materialized."""
        stream = self.stream_chain(query)
        while True:
            try:
                next(stream)
            except StopIteration as stop:
                return stop.value

    def stream_batches(self, query: EncryptedJoinQuery):
        """Like :meth:`stream_join` but as a plain iterator of batches
        (the final result is discarded) — convenient for consumers that
        only want incremental rows."""
        stream = self.stream_join(query)
        while True:
            try:
                yield next(stream)
            except StopIteration:
                return


__all__ = [
    "DEFAULT_BUFFERED_BATCHES",
    "MatchBatch",
    "RemoteJoinClient",
]
