"""The streamed join service: a TCP endpoint over the v4 wire format.

:class:`JoinServiceServer` wraps a
:class:`~repro.core.server.SecureJoinServer` behind a listening socket.
One thread per connection; each connection serves any number of queries
sequentially.  Per query the handler emits:

1. one **stream-header frame** acknowledging the query,
2. a **match-batch frame** per :class:`~repro.core.server.MatchBatch`
   the streaming pipeline yields — pairs and payloads in discovery
   order, sent while SJ.Dec is still running,
3. one **final frame** with the canonical pair order and the
   :class:`~repro.core.server.ServerStats` — or an **error frame** if
   the query failed (bad payload, unknown table, deadline exceeded...).

Exposure policy: the socket can reach exactly ``decode_join_query`` →
``stream_join`` (and, since v7, ``decode_chain_query`` →
``stream_chain`` for multi-way chain queries, dispatched by magic
prefix on the same port).  Client engine hints pass through the same
``hint_engines`` allowlist gate as in-process hints; priority/deadline
QoS from the v4 query header feed the admission scheduler; pool
controls, engine overrides, the observation log and store mutation are
not reachable from the wire.

Graceful drain (:meth:`JoinServiceServer.shutdown`): stop accepting new
connections, let in-flight query streams finish, close idle
connections, then close the underlying worker pool.  This is what the
``python -m repro.net`` process does on SIGTERM.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.core.server import SecureJoinServer
from repro.errors import NetworkError, ReproError
from repro.net.protocol import MAX_MESSAGE_SIZE, recv_message, send_message
from repro.store.wire import (
    decode_chain_query,
    decode_join_query,
    encode_chain_batch,
    encode_chain_final,
    encode_error_frame,
    encode_final_frame,
    encode_match_batch,
    encode_stream_header,
    is_chain_query,
)


class _Connection:
    """One accepted client connection and its serving state."""

    def __init__(self, sock: socket.socket, peer):
        self.sock = sock
        self.peer = peer
        #: True while a query stream is in flight on this connection —
        #: drain waits for busy connections and force-closes idle ones.
        self.busy = False


class JoinServiceServer:
    """Thread-per-connection TCP server speaking the v4 frame stream."""

    def __init__(
        self,
        join_server: SecureJoinServer,
        host: str = "127.0.0.1",
        port: int = 0,
        algorithm: str = "hash",
        max_message_size: int = MAX_MESSAGE_SIZE,
        backlog: int = 32,
        drain_timeout: float = 30.0,
    ):
        self.join_server = join_server
        self.algorithm = algorithm
        self.max_message_size = max_message_size
        self.drain_timeout = drain_timeout
        self._host = host
        self._port = port
        self._backlog = backlog
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._connections: set[_Connection] = set()
        self._handlers: list[threading.Thread] = []
        self._draining = threading.Event()
        self._started = False
        #: Completed query streams (diagnostics and tests).
        self.queries_served = 0

    # -- lifecycle --------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind, listen, and start accepting.  Returns ``(host, port)``."""
        if self._started:
            raise NetworkError("server already started")
        listener = socket.create_server(
            (self._host, self._port), backlog=self._backlog, reuse_port=False
        )
        self._listener = listener
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-net-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — with ``port=0``, the real port."""
        if self._listener is None:
            raise NetworkError("server is not started")
        return self._listener.getsockname()[:2]

    def __enter__(self) -> "JoinServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def active_connections(self) -> int:
        with self._lock:
            return len(self._connections)

    # -- accept / serve ---------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                # Listener closed: shutdown in progress.
                return
            try:
                # Frames are small and latency-sensitive: without this,
                # Nagle + delayed ACK can stall each one ~40ms.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP test doubles
                pass
            with self._lock:
                if self._draining.is_set():
                    sock.close()
                    continue
                connection = _Connection(sock, peer)
                self._connections.add(connection)
                handler = threading.Thread(
                    target=self._serve_connection,
                    args=(connection,),
                    name=f"repro-net-conn-{peer}",
                    daemon=True,
                )
                self._handlers.append(handler)
            handler.start()

    def _serve_connection(self, connection: _Connection) -> None:
        sock = connection.sock
        try:
            while not self._draining.is_set():
                try:
                    request = recv_message(sock, self.max_message_size)
                except NetworkError:
                    # Oversized or truncated request: the stream framing
                    # is no longer trustworthy — drop the connection.
                    return
                if request is None:
                    return
                with self._lock:
                    if self._draining.is_set():
                        return
                    connection.busy = True
                try:
                    self._serve_query(sock, request)
                except NetworkError:
                    # The client vanished mid-stream (or drain cut the
                    # socket); admissions were released by the finally
                    # inside _serve_query.
                    return
                finally:
                    with self._lock:
                        connection.busy = False
                        self.queries_served += 1
        finally:
            with self._lock:
                self._connections.discard(connection)
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _serve_query(self, sock: socket.socket, request: bytes) -> None:
        """Decode one query, stream its result frames.

        Library failures (codec, scheme, deadline) are reported in-band
        as an error frame; transport failures propagate and drop the
        connection.  Multi-way chain queries arrive on the same port
        with their own magic and are dispatched by a prefix sniff.
        """
        if is_chain_query(request):
            self._serve_chain_query(sock, request)
            return
        backend = self.join_server.scheme.backend
        try:
            query = decode_join_query(request, backend)
        except ReproError as error:
            send_message(
                sock, encode_error_frame(type(error).__name__, str(error))
            )
            return
        stream = self.join_server.stream_join(
            query, algorithm=self.algorithm
        )
        try:
            send_message(
                sock,
                encode_stream_header(
                    query.query_id, query.left_table, query.right_table
                ),
            )
            try:
                while True:
                    try:
                        batch = next(stream)
                    except StopIteration as stop:
                        result = stop.value
                        break
                    send_message(sock, encode_match_batch(batch))
            except ReproError as error:
                # stream_join failed mid-flight (unknown table, bad
                # token dimension, deadline exceeded...): terminate the
                # response in-band so the client sees *why*.
                send_message(
                    sock,
                    encode_error_frame(type(error).__name__, str(error)),
                )
                return
            send_message(sock, encode_final_frame(result))
        finally:
            # Covers the transport-failure exits too: abandoning the
            # generator releases the query's pool admissions.
            stream.close()

    def _serve_chain_query(self, sock: socket.socket, request: bytes) -> None:
        """Stream one multi-way chain query's result frames.

        Same exposure policy and error discipline as two-way queries;
        the stream-header frame names the chain's endpoint tables, so
        v4 clients that cannot speak chains still see a well-formed
        stream opening before the unfamiliar chain frames arrive.
        """
        backend = self.join_server.scheme.backend
        try:
            query = decode_chain_query(request, backend)
        except ReproError as error:
            send_message(
                sock, encode_error_frame(type(error).__name__, str(error))
            )
            return
        stream = self.join_server.stream_chain(query)
        try:
            send_message(
                sock,
                encode_stream_header(
                    query.query_id, query.tables[0], query.tables[-1]
                ),
            )
            try:
                while True:
                    try:
                        batch = next(stream)
                    except StopIteration as stop:
                        result = stop.value
                        break
                    if batch.tuples:
                        send_message(sock, encode_chain_batch(batch))
            except ReproError as error:
                send_message(
                    sock,
                    encode_error_frame(type(error).__name__, str(error)),
                )
                return
            send_message(sock, encode_chain_final(result))
        finally:
            stream.close()

    # -- graceful drain ---------------------------------------------------
    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service.  Idempotent.

        With ``drain`` (the default): stop accepting new connections,
        let in-flight query streams run to completion (bounded by
        ``timeout`` / ``drain_timeout``), close idle connections, then
        close the underlying execution pool.  Without ``drain``:
        everything is closed immediately.
        """
        self._draining.set()
        if self._listener is not None:
            # close() alone does not wake a thread blocked in accept():
            # the in-flight syscall keeps the kernel socket alive — and
            # listening — until accept returns, so a client could still
            # connect after shutdown.  shutdown(SHUT_RDWR) aborts the
            # blocked accept immediately.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        budget = timeout if timeout is not None else self.drain_timeout
        deadline = time.monotonic() + max(0.0, budget)
        # Idle connections are blocked in recv waiting for a query that
        # must now never come; unblock them.  Busy connections keep
        # their sockets — their in-flight stream finishes first (drain)
        # or is cut (not drain).
        with self._lock:
            for connection in list(self._connections):
                if not drain or not connection.busy:
                    _force_close(connection.sock)
        if drain:
            while time.monotonic() < deadline:
                with self._lock:
                    if not any(c.busy for c in self._connections):
                        break
                time.sleep(0.02)
            # Past the budget (or done): cut whatever is left.
            with self._lock:
                for connection in list(self._connections):
                    _force_close(connection.sock)
        for handler in self._handlers:
            handler.join(timeout=max(0.1, deadline - time.monotonic()))
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        # Streams done (or cut): now the pool can go.
        self.join_server.close()


def _force_close(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:  # pragma: no cover - already closed
        pass
