"""Query-series support: the cross-query cache behind repeated joins.

The paper's titular scenario is a *series* of queries over the same
encrypted tables.  This package retains what the first execution of a
query computed — the decrypted per-row handles and the live incremental
matcher — so a repeated query replays the canonical result with zero
pairing work, and base-table mutations are delta-maintained instead of
forcing a from-scratch re-join.  See :mod:`repro.series.cache`.
"""

from repro.series.cache import (
    DEFAULT_SERIES_BUDGET,
    SeriesCache,
    SeriesCacheStats,
    SeriesEntry,
    series_key,
)

__all__ = [
    "DEFAULT_SERIES_BUDGET",
    "SeriesCache",
    "SeriesCacheStats",
    "SeriesEntry",
    "series_key",
]
