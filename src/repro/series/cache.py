"""The server-resident cross-query cache for repeated joins.

One :class:`SeriesEntry` retains, per ``(left table, right table,
token-pair digest)``, everything the first execution of that query
computed and that is worth keeping:

- the decrypted per-row **handles** of both sides (the SJ.Dec output —
  the expensive pairing work), keyed by row index;
- the live :class:`~repro.db.matcher.IncrementalMatcher`, whose state
  already encodes every pairing decision made so far.

A repeated query then *replays*: ``matcher.finish()`` re-sorts the
retained pairs into the canonical right-major order and not a single
Miller loop runs.  A mutated base table is **delta-maintained**: the
server feeds only the rows inserted since the last refresh through
SJ.Dec into the retained matcher (``add_left`` / ``add_right`` accept
increments by construction) and withdraws tombstoned rows with
``retract_left`` / ``retract_right`` — never re-decrypting what it
already holds.

Keying and invalidation semantics:

- The digest covers the **token bytes**, so only a literally
  re-submitted query hits.  This is by design: ``SJ.TokenGen`` draws a
  fresh query key per query (handles are unlinkable across queries —
  the scheme's privacy property), so a semantically identical query
  under fresh tokens is a *miss* that seeds its own entry.  Replaying a
  hit therefore reveals nothing the adversary has not already seen.
- Entries are guarded by per-table **epochs** (bumped when a table is
  re-stored wholesale: everything retained is garbage) and **versions**
  (bumped per insert/delete: the entry is stale but delta-repairable).
- Memory is bounded by a **byte budget**: entries are accounted by
  their retained handle bytes and pair state and evicted LRU.

Concurrency: the cache's own map is lock-protected, and every entry
carries its own lock — the server holds it across a replay or a delta
refresh, so two threads re-running the same query serialize on the
entry instead of corrupting the shared matcher.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.db.matcher import IncrementalMatcher

LEFT = "left"
RIGHT = "right"

#: Default byte budget for retained handles/matcher state (64 MiB).
DEFAULT_SERIES_BUDGET = 64 * 1024 * 1024

#: Accounting overhead charged per retained handle beyond its bytes
#: (dict slot, int key, bytes header) and per retained pair.
_HANDLE_OVERHEAD = 96
_PAIR_OVERHEAD = 80
_ENTRY_OVERHEAD = 1024


def series_key(query, backend) -> bytes:
    """The cache key of one join query: a digest of what determines its
    result — the table pair, both SJ tokens (byte-encoded), and both
    pre-filter tag sets.  Engine and matcher choices are deliberately
    excluded: they change how the result is computed, never what it is.
    """
    digest = hashlib.blake2b(digest_size=32)
    for table_name in (query.left_table, query.right_table):
        name = table_name.encode("utf-8")
        digest.update(len(name).to_bytes(4, "big"))
        digest.update(name)
    for token in (query.left_token, query.right_token):
        for element in token.elements:
            digest.update(backend.encode_g1(element))
    for prefilter in (query.left_prefilter, query.right_prefilter):
        if prefilter is None:
            digest.update(b"\x00")
            continue
        digest.update(b"\x01")
        for column in sorted(prefilter):
            name = column.encode("utf-8")
            digest.update(len(name).to_bytes(4, "big"))
            digest.update(name)
            for tag in sorted(prefilter[column]):
                digest.update(tag)
    return digest.digest()


def chain_series_key(query, backend) -> bytes:
    """The cache key of one multi-way chain query.

    Same determinants as :func:`series_key` — per-position table names,
    token bytes and pre-filter tag sets — under a ``chain`` domain
    prefix, so two-way and chain entries can never collide in one
    cache.
    """
    digest = hashlib.blake2b(digest_size=32)
    digest.update(b"chain\x00")
    digest.update(len(query.tables).to_bytes(4, "big"))
    for table_name in query.tables:
        name = table_name.encode("utf-8")
        digest.update(len(name).to_bytes(4, "big"))
        digest.update(name)
    for token in query.tokens:
        for element in token.elements:
            digest.update(backend.encode_g1(element))
    for prefilter in query.prefilters:
        if prefilter is None:
            digest.update(b"\x00")
            continue
        digest.update(b"\x01")
        for column in sorted(prefilter):
            name = column.encode("utf-8")
            digest.update(len(name).to_bytes(4, "big"))
            digest.update(name)
            for tag in sorted(prefilter[column]):
                digest.update(tag)
    return digest.digest()


class SeriesEntry:
    """Retained state of one query: handle maps + the live matcher."""

    __slots__ = (
        "key",
        "left_table",
        "right_table",
        "epochs",
        "versions",
        "handles",
        "payloads",
        "matcher",
        "matcher_name",
        "applied_tombstones",
        "lock",
        "byte_size",
        "replays",
        "delta_refreshes",
    )

    def __init__(
        self,
        key: bytes,
        left_table: str,
        right_table: str,
        epochs,
        versions,
        matcher: IncrementalMatcher,
        matcher_name: str,
    ):
        self.key = key
        self.left_table = left_table
        self.right_table = right_table
        #: Per-table store generations the entry was built against; an
        #: epoch mismatch means the table was replaced wholesale and
        #: nothing retained is salvageable.
        self.epochs = epochs
        #: Per-table mutation counters at the last (re)fresh; a version
        #: mismatch means the entry is stale but delta-repairable.
        self.versions = versions
        #: side -> {row index -> handle bytes}: exactly the rows this
        #: query has ever decrypted and not since retracted.
        self.handles: dict[str, dict[int, bytes]] = {LEFT: {}, RIGHT: {}}
        #: side -> {row index -> payload bytes}: only populated by
        #: holders that cannot re-read payloads from local tables (the
        #: shard coordinator); the single-store server leaves it empty.
        self.payloads: dict[str, dict[int, bytes]] = {LEFT: {}, RIGHT: {}}
        self.matcher = matcher
        self.matcher_name = matcher_name
        #: side -> tombstoned row indices already withdrawn (or known
        #: never-fed), so each delete is applied exactly once.
        self.applied_tombstones: dict[str, set[int]] = {
            LEFT: set(),
            RIGHT: set(),
        }
        self.lock = threading.RLock()
        self.byte_size = 0
        self.replays = 0
        self.delta_refreshes = 0

    def recompute_bytes(self) -> int:
        """Re-account the entry's retained memory (call after refresh)."""
        total = _ENTRY_OVERHEAD
        for side_handles in self.handles.values():
            for handle in side_handles.values():
                total += len(handle) + _HANDLE_OVERHEAD
        for side_payloads in self.payloads.values():
            for payload in side_payloads.values():
                total += len(payload) + _HANDLE_OVERHEAD
        total += self.matcher.stats.matches * _PAIR_OVERHEAD
        self.byte_size = total
        return total

    def reused_handles(self) -> int:
        return len(self.handles[LEFT]) + len(self.handles[RIGHT])

    @property
    def tables(self) -> tuple[str, ...]:
        """The tables this entry depends on (invalidation scope)."""
        return (self.left_table, self.right_table)


class ChainSeriesEntry:
    """Retained state of one multi-way chain query.

    The chain counterpart of :class:`SeriesEntry`: instead of two
    handle maps and a two-way matcher it retains the whole live
    :class:`~repro.plan.executor.ChainExecutor` — per-position handle
    maps plus the cascaded per-node matcher state — so a re-submitted
    chain replays from ``executor.finish()`` and a mutated one is
    repaired by feeding/retracting per-position deltas.
    """

    __slots__ = (
        "key",
        "tables",
        "epochs",
        "versions",
        "executor",
        "applied_tombstones",
        "lock",
        "byte_size",
        "replays",
        "delta_refreshes",
    )

    def __init__(self, key: bytes, tables, epochs, versions, executor):
        self.key = key
        self.tables = tuple(tables)
        self.epochs = tuple(epochs)
        self.versions = tuple(versions)
        self.executor = executor
        #: Per chain position: tombstoned row indices already withdrawn
        #: (or known never-fed), so each delete applies exactly once.
        self.applied_tombstones: list[set[int]] = [
            set() for _ in self.tables
        ]
        self.lock = threading.RLock()
        self.byte_size = 0
        self.replays = 0
        self.delta_refreshes = 0

    def recompute_bytes(self) -> int:
        self.byte_size = _ENTRY_OVERHEAD + self.executor.retained_bytes()
        return self.byte_size

    def reused_handles(self) -> int:
        return self.executor.reused_handles()


@dataclass
class SeriesCacheStats:
    """Cumulative cache behavior counters (diagnostics / tests)."""

    hits: int = 0
    misses: int = 0
    replays: int = 0
    delta_refreshes: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Lookups that found a live entry but could not take its per-entry
    #: lock without blocking; the query fell through to the miss path
    #: instead of queueing behind the contended series.
    lock_contention: int = 0


class SeriesCache:
    """A byte-budgeted LRU over :class:`SeriesEntry` values.

    ``budget_bytes`` bounds the *accounted* retained bytes; inserting
    or refreshing an entry evicts least-recently-used others until the
    total fits.  An entry that alone exceeds the whole budget is not
    retained at all — the query still runs, it just won't replay.
    """

    def __init__(self, budget_bytes: int = DEFAULT_SERIES_BUDGET):
        if budget_bytes < 0:
            raise ValueError("series cache budget must be >= 0")
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[bytes, SeriesEntry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.stats = SeriesCacheStats()

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    # -- lookup / insert --------------------------------------------------
    def lookup(self, key: bytes, epochs) -> SeriesEntry | None:
        """The entry for ``key``, LRU-bumped — or ``None`` on a miss.

        ``epochs`` is the caller's current per-table store-generation
        pair; an entry built against different epochs is dropped (the
        tables it described no longer exist) and counted as an
        invalidation, not a hit.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.epochs != epochs:
                self._evict(key, invalidation=True)
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def store(self, entry: SeriesEntry) -> bool:
        """Insert (or replace) an entry; returns False if it was too
        large to retain under the budget."""
        entry.recompute_bytes()
        with self._lock:
            if entry.key in self._entries:
                self._evict(entry.key)
            if entry.byte_size > self.budget_bytes:
                return False
            self._entries[entry.key] = entry
            self._bytes += entry.byte_size
            self._enforce_budget(keep=entry.key)
            return True

    def reaccount(self, entry: SeriesEntry) -> None:
        """Re-charge a refreshed entry's bytes and re-enforce the budget
        (the entry may have grown past it and be evicted here)."""
        with self._lock:
            if entry.key not in self._entries:
                return
            self._bytes -= entry.byte_size
            self._bytes += entry.recompute_bytes()
            self._entries.move_to_end(entry.key)
            if entry.byte_size > self.budget_bytes:
                self._evict(entry.key)
                return
            self._enforce_budget(keep=entry.key)

    # -- invalidation / eviction ------------------------------------------
    def invalidate_table(self, table_name: str) -> int:
        """Drop every entry joining over ``table_name`` (re-store path)."""
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if table_name in entry.tables
            ]
            for key in doomed:
                self._evict(key, invalidation=True)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            for key in list(self._entries):
                self._evict(key)

    def _evict(self, key: bytes, invalidation: bool = False) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self._bytes -= entry.byte_size
        if invalidation:
            self.stats.invalidations += 1
        else:
            self.stats.evictions += 1

    def _enforce_budget(self, keep: bytes) -> None:
        while self._bytes > self.budget_bytes and len(self._entries) > 1:
            oldest = next(iter(self._entries))
            if oldest == keep:
                # The protected entry is the oldest: rotate it out of
                # the firing line and evict the next-oldest instead.
                self._entries.move_to_end(oldest)
                oldest = next(iter(self._entries))
            self._evict(oldest)
        if self._bytes > self.budget_bytes:
            # Only the protected entry remains and it still does not
            # fit; store() pre-filters this case, but a refresh can
            # grow an entry past the budget.
            self._evict(keep)
