"""Deterministic hash partitioning of encrypted tables across shards.

The shard of a row must be a pure function of bytes the server already
stores — never of plaintext (the server has none) and never of Python's
``hash()`` (whose value changes per process under ``PYTHONHASHSEED``
randomization, which would scatter the same table differently on every
restart).  The partitioner keys a seeded ``blake2b`` over the row's
stable bytes:

- the row's pre-filter tag (first tagged column in sorted order) when
  the table carries searchable tags — rows with equal selection values
  then co-locate, so a pre-filtered query touches few shards;
- otherwise the concatenated encoded G2 ciphertext elements, which are
  unique and stable per row.

Note what partitioning can *not* do: co-locate rows with equal join
values.  SJ ciphertexts are randomized, and handles exist only under a
query token — so equal-key rows land on arbitrary shards, shard-local
joins would silently miss cross-shard matches, and the coordinator
therefore gathers *handle* streams and matches centrally (see
:mod:`repro.shard.coordinator`).

Repartitioning is explicit: every partitioned table carries a
:class:`ShardDescriptor` pinning the shard count and seed it was split
under, and the coordinator refuses descriptors that disagree with its
own layout — changing the shard count means calling
:func:`partition_table` again, never silently rehashing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.client import EncryptedTable
from repro.crypto.backend import BilinearBackend
from repro.errors import SchemeError

#: Hard bound on the shard count: wire decoders and constructors reject
#: anything larger, so a hostile header cannot demand absurd fan-out.
MAX_SHARD_COUNT = 1024

#: Default partitioner seed.  Any bytes work; all parties (and all
#: restarts) must agree on it, so it travels in the shard descriptor
#: and the shard map.
DEFAULT_SEED = b"repro-shard-v1"

_MAX_SEED_SIZE = 64


@dataclass(frozen=True)
class ShardDescriptor:
    """Which slice of a partitioned table one shard holds.

    ``global_indices[i]`` is the row index in the *original* table of
    the shard-local row ``i`` — the coordinator translates every
    shard-local candidate back through it, so merged match pairs are in
    the single-store index space (that is what makes the scatter-gather
    result byte-identical to the unsharded join).
    """

    shard_index: int
    shard_count: int
    seed: bytes
    global_indices: tuple[int, ...]

    def __post_init__(self):
        validate_shard_layout(self.shard_index, self.shard_count, self.seed)
        previous = -1
        for index in self.global_indices:
            if not isinstance(index, int) or index <= previous:
                raise SchemeError(
                    "shard descriptor global indices must be strictly "
                    "increasing non-negative integers"
                )
            previous = index


def validate_shard_layout(
    shard_index: int, shard_count: int, seed: bytes
) -> None:
    """Reject malformed (or hostile) shard layout parameters."""
    if (
        isinstance(shard_count, bool)
        or not isinstance(shard_count, int)
        or not 1 <= shard_count <= MAX_SHARD_COUNT
    ):
        raise SchemeError(
            f"shard count must be an integer in [1, {MAX_SHARD_COUNT}], "
            f"got {shard_count!r}"
        )
    if (
        isinstance(shard_index, bool)
        or not isinstance(shard_index, int)
        or not 0 <= shard_index < shard_count
    ):
        raise SchemeError(
            f"shard index {shard_index!r} outside [0, {shard_count})"
        )
    if not isinstance(seed, bytes) or not 1 <= len(seed) <= _MAX_SEED_SIZE:
        raise SchemeError(
            f"shard seed must be 1..{_MAX_SEED_SIZE} bytes"
        )


def shard_of_bytes(key: bytes, shard_count: int, seed: bytes) -> int:
    """The shard a stable row key maps to: seeded blake2b, mod count.

    Deterministic across processes, interpreter runs and platforms —
    unlike ``hash()``, whose string/bytes output is salted per process.
    """
    validate_shard_layout(0, shard_count, seed)
    digest = hashlib.blake2b(key, digest_size=8, key=seed).digest()
    return int.from_bytes(digest, "big") % shard_count


def row_shard_keys(
    table: EncryptedTable, backend: BilinearBackend
) -> list[bytes]:
    """Per-row stable bytes the partitioner hashes.

    Pre-filter tag of the first tagged column when present (equal
    selection values co-locate); otherwise the row's encoded ciphertext
    vector (unique, stable, already server-held).
    """
    if table.prefilter_tags:
        column = sorted(table.prefilter_tags)[0]
        return list(table.prefilter_tags[column])
    return [
        b"".join(backend.encode_g2(e) for e in ciphertext.elements)
        for ciphertext in table.ciphertexts
    ]


def partition_rows(
    table: EncryptedTable,
    backend: BilinearBackend,
    shard_count: int,
    seed: bytes = DEFAULT_SEED,
) -> list[int]:
    """The shard assignment, one entry per row of ``table``."""
    keys = row_shard_keys(table, backend)
    return [shard_of_bytes(key, shard_count, seed) for key in keys]


def partition_table(
    table: EncryptedTable,
    backend: BilinearBackend,
    shard_count: int,
    seed: bytes = DEFAULT_SEED,
    assignment: list[int] | None = None,
) -> list[EncryptedTable]:
    """Split one encrypted table into ``shard_count`` shard tables.

    Returns one :class:`~repro.core.client.EncryptedTable` per shard
    (possibly empty), each carrying a :class:`ShardDescriptor` mapping
    its rows back to the original indices.  ``assignment`` overrides
    the hash placement with an explicit per-row shard list — the
    rebalancing hook (skew tests use it too); it must still name shards
    within ``[0, shard_count)``.

    Repartitioning is this function: to change the shard count, call it
    again on the original table and restore the new shard set.  There
    is no implicit rehash anywhere downstream — a descriptor that
    disagrees with the coordinator's layout is an error, not a trigger.
    """
    validate_shard_layout(0, shard_count, seed)
    if assignment is None:
        assignment = partition_rows(table, backend, shard_count, seed)
    if len(assignment) != len(table.ciphertexts):
        raise SchemeError(
            f"assignment names {len(assignment)} rows for a table of "
            f"{len(table.ciphertexts)}"
        )
    members: list[list[int]] = [[] for _ in range(shard_count)]
    for row_index, shard in enumerate(assignment):
        if isinstance(shard, bool) or not isinstance(shard, int) or not (
            0 <= shard < shard_count
        ):
            raise SchemeError(
                f"row {row_index} assigned to shard {shard!r}, outside "
                f"[0, {shard_count})"
            )
        members[shard].append(row_index)
    shards = []
    for shard_index, indices in enumerate(members):
        prefilter = None
        if table.prefilter_tags is not None:
            prefilter = {
                column: [tags[i] for i in indices]
                for column, tags in table.prefilter_tags.items()
            }
        prepared = None
        if table.prepared_rows is not None:
            prepared = [table.prepared_rows[i] for i in indices]
        shards.append(EncryptedTable(
            name=table.name,
            schema=table.schema,
            join_column=table.join_column,
            attribute_columns=table.attribute_columns,
            ciphertexts=[table.ciphertexts[i] for i in indices],
            payloads=[table.payloads[i] for i in indices],
            prefilter_tags=prefilter,
            prepared_rows=prepared,
            shard=ShardDescriptor(
                shard_index=shard_index,
                shard_count=shard_count,
                seed=seed,
                global_indices=tuple(indices),
            ),
        ))
    return shards


def shard_skew(rows_per_shard: list[int]) -> float:
    """Load imbalance: max over mean rows per shard (1.0 = uniform).

    The planner prices cross-shard parallelism with it — scatter
    makespan is the *slowest* shard, so skew directly discounts the
    ideal ``1/n`` speedup.
    """
    if not rows_per_shard:
        return 1.0
    mean = sum(rows_per_shard) / len(rows_per_shard)
    if mean <= 0:
        return 1.0
    return max(rows_per_shard) / mean
