"""Scatter-gather join coordination over a sharded encrypted store.

The division of labor follows from what partitioning *cannot* do (see
:mod:`repro.shard.partition`): ciphertexts are randomized and handles
exist only under a query token, so equal-join-value rows land on
arbitrary shards and shard-local matching would miss cross-shard pairs.
The coordinator therefore **scatters SJ.Dec and centralizes SJ.Match**:

1. every shard opens decrypt streams for both sides of the query on its
   *own* :class:`~repro.core.service.ExecutionService` pool (that is
   the scale-out: n shards = n pools = n hosts' worth of cores), with
   the query's priority/deadline QoS propagated into each shard's
   admission scheduler;
2. the coordinator merges all shards' handle chunks — each translated
   to *global* row indices — into one incremental matcher, yielding
   :class:`~repro.core.server.MatchBatch` increments in discovery
   order exactly like the single-store pipeline;
3. ``matcher.finish()`` sorts into the canonical right-major order over
   global indices, so the reassembled
   :class:`~repro.core.server.EncryptedJoinResult` is **byte-identical
   to the unsharded join** no matter the shard count, the partition
   skew, or how chunks interleaved (the property the test suite pins).

Failure semantics: a worker crash inside one shard's pool is rescued by
that shard's own respawn machinery (invisible here, result unchanged);
a whole shard dying mid-stream — pool closed, endpoint unreachable —
raises :class:`~repro.errors.ShardUnavailableError` naming the shard,
after the merge's cleanup has closed every other shard's streams and
released their admissions.  Deadline expiry stays a plain
:class:`~repro.errors.DeadlineError`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

from repro.core.client import EncryptedJoinQuery, EncryptedTable
from repro.core.engine import EngineReport, ExecutionEngine
from repro.core.pipeline import LEFT, RIGHT, SideEventSource, run_scatter_pipeline
from repro.core.scheme import SecureJoinParams
from repro.core.server import (
    MATCH_ALGORITHMS,
    ChainMatchBatch,
    EncryptedChainResult,
    EncryptedJoinResult,
    MatchBatch,
    QueryObservation,
    SecureJoinServer,
    ServerStats,
)
from repro.core.service import QueryQoS
from repro.crypto.backend import BilinearBackend
from repro.db.matcher import get_matcher
from repro.errors import (
    DeadlineError,
    NetworkError,
    QueryError,
    SchemeError,
    ShardUnavailableError,
)
from repro.plan import (
    MAX_CHAIN_TABLES,
    ChainExecutor,
    ChainSideSource,
    compile_plan,
    group_chain_sides,
    run_chain_pipeline,
)
from repro.series.cache import (
    DEFAULT_SERIES_BUDGET,
    SeriesCache,
    SeriesEntry,
    series_key,
)
from repro.shard.partition import shard_of_bytes, shard_skew


@dataclass
class ScatterOutcome:
    """What one remote shard reports after its scatter completes."""

    candidates_left: int = 0
    candidates_right: int = 0
    left_report: EngineReport | None = None
    right_report: EngineReport | None = None


class LocalShard:
    """One shard served in-process: its own tables, its own pool.

    Wraps a dedicated :class:`~repro.core.server.SecureJoinServer`
    (and therefore a dedicated
    :class:`~repro.core.service.ExecutionService`); only tables split
    by :func:`~repro.shard.partition.partition_table` may be stored,
    and every stored table must agree on the shard layout — a
    descriptor from a different shard count or seed is rejected, which
    is what makes repartitioning explicit rather than silent.
    """

    def __init__(
        self,
        params: SecureJoinParams,
        backend: BilinearBackend | None = None,
        engine: ExecutionEngine | str | None = None,
        workers: int | None = None,
        name: str | None = None,
    ):
        self.name = name
        self.server = SecureJoinServer(
            params, backend=backend, engine=engine, workers=workers
        )
        self.server.execution_service.name = name
        self._descriptors: dict[str, object] = {}
        self._layout: tuple[int, int, bytes] | None = None

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        self.server.close()

    def __enter__(self) -> "LocalShard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def layout(self) -> tuple[int, int, bytes] | None:
        """``(shard_index, shard_count, seed)`` once a table is stored."""
        return self._layout

    @property
    def backend_name(self) -> str:
        return self.server.scheme.backend.name

    @property
    def backend(self) -> BilinearBackend:
        return self.server.scheme.backend

    # -- series maintenance ----------------------------------------------
    def table_epoch(self, name: str) -> int:
        return self.server.table_epoch(name)

    def table_version(self, name: str) -> int:
        return self.server.table_version(name)

    def tombstoned_global_rows(self, name: str) -> set[int]:
        """Deleted rows of this shard's slice, in global indices."""
        descriptor = self._descriptors.get(name)
        if descriptor is None:
            return set()
        return {
            descriptor.global_indices[i]
            for i in self.server.tombstoned_rows(name)
        }

    def max_global_index(self, name: str) -> int:
        """The largest global row index this shard holds (-1 if none)."""
        descriptor = self._descriptors.get(name)
        if descriptor is None or not descriptor.global_indices:
            return -1
        return descriptor.global_indices[-1]

    # -- dynamic updates --------------------------------------------------
    def insert_row(
        self,
        table_name: str,
        ciphertext,
        payload: bytes,
        prefilter_tags: dict[str, bytes] | None,
        global_index: int,
    ) -> int:
        """Append one row to this shard's slice under ``global_index``.

        The descriptor is extended in place (indices must stay strictly
        increasing, so the coordinator assigns fresh global numbers past
        every shard's maximum); returns the shard-local row index.
        """
        descriptor = self._descriptors.get(table_name)
        if descriptor is None:
            raise SchemeError(
                f"shard holds no table {table_name!r} to insert into"
            )
        if (
            descriptor.global_indices
            and global_index <= descriptor.global_indices[-1]
        ):
            raise SchemeError(
                f"global index {global_index} not past this shard's "
                f"maximum {descriptor.global_indices[-1]}"
            )
        local = self.server.insert_row(
            table_name, ciphertext, payload, prefilter_tags
        )
        updated = dataclasses.replace(
            descriptor,
            global_indices=descriptor.global_indices + (global_index,),
        )
        self._descriptors[table_name] = updated
        self.server.table(table_name).shard = updated
        return local

    def delete_rows(self, table_name: str, global_indices) -> int:
        """Tombstone the listed global rows this shard owns; returns
        how many of them actually lived here."""
        descriptor = self._descriptors.get(table_name)
        if descriptor is None:
            return 0
        position = {
            g: i for i, g in enumerate(descriptor.global_indices)
        }
        local = [position[g] for g in global_indices if g in position]
        if local:
            self.server.delete_rows(table_name, local)
        return len(local)

    def row_key(
        self, ciphertext, prefilter_tags: dict[str, bytes] | None = None
    ) -> bytes:
        """The partitioner's stable key for one row (mirror of
        :func:`~repro.shard.partition.row_shard_keys`)."""
        if prefilter_tags:
            column = sorted(prefilter_tags)[0]
            return prefilter_tags[column]
        backend = self.server.scheme.backend
        return b"".join(
            backend.encode_g2(element) for element in ciphertext.elements
        )

    # -- storage ----------------------------------------------------------
    def store(self, table: EncryptedTable) -> None:
        descriptor = table.shard
        if descriptor is None:
            raise SchemeError(
                f"table {table.name!r} carries no shard descriptor; split "
                "it with partition_table before storing on a shard"
            )
        layout = (
            descriptor.shard_index,
            descriptor.shard_count,
            descriptor.seed,
        )
        if self._layout is None:
            self._layout = layout
        elif layout != self._layout:
            raise SchemeError(
                f"table {table.name!r} was partitioned as shard "
                f"{layout[0]}/{layout[1]} but this shard holds "
                f"{self._layout[0]}/{self._layout[1]}; repartition the "
                "store explicitly (partition_table) instead of mixing "
                "layouts"
            )
        self._descriptors[table.name] = descriptor
        self.server.store(table)

    # -- scatter ----------------------------------------------------------
    def open_scatter_sources(
        self,
        query: EncryptedJoinQuery,
        engine: ExecutionEngine | str | None = None,
        qos: QueryQoS | None = None,
        exclude: dict[str, set[int]] | None = None,
    ) -> list[SideEventSource]:
        """Open both sides' decrypt streams on this shard's pool.

        Returns one :class:`~repro.core.pipeline.SideEventSource` per
        side, emitting ``(global_row, handle, payload)`` items — global
        indices via the shard descriptor, so the coordinator's matcher
        operates in the single-store index space.  The query's QoS is
        stamped here (per shard) unless the caller passes one, so every
        shard's admission scheduler sees the same priority/deadline.
        ``exclude`` maps a side to *global* rows the coordinator already
        holds handles for (the delta-scatter path): those rows are
        translated to shard-local indices and never decrypted again.
        """
        if qos is None:
            qos = _query_qos(query)
        sides = (
            (LEFT, query.left_table, query.left_token, query.left_prefilter),
            (
                RIGHT,
                query.right_table,
                query.right_token,
                query.right_prefilter,
            ),
        )
        sources: list[SideEventSource] = []
        try:
            for side, table_name, token, prefilter in sides:
                descriptor = self._descriptors[table_name]
                exclude_rows: set[int] | None = None
                excluded_global = (exclude or {}).get(side)
                if excluded_global:
                    exclude_rows = {
                        i
                        for i, g in enumerate(descriptor.global_indices)
                        if g in excluded_global
                    }
                candidates, stream = self.server.open_side_stream(
                    table_name,
                    token,
                    prefilter,
                    qos=qos,
                    engine=engine,
                    exclude_rows=exclude_rows,
                )
                table = self.server.table(table_name)
                sources.append(SideEventSource(
                    side,
                    stream,
                    [descriptor.global_indices[i] for i in candidates],
                    [table.payloads[i] for i in candidates],
                ))
        except BaseException:
            for source in sources:
                source.close()
            raise
        return sources

    def open_chain_sources(
        self,
        query,
        engine: ExecutionEngine | str | None = None,
        qos: QueryQoS | None = None,
    ) -> tuple[list[ChainSideSource], list[list[int]]]:
        """Open this shard's slice of a multi-way chain scatter.

        The per-query handle pool applies *within the shard*: positions
        sharing a (table, token) side collapse into one
        :class:`~repro.plan.executor.ChainSideSource` whose items are
        ``(global_row, handle, payload)`` 3-tuples, so a self-join
        chain decrypts each shard slice once no matter how many
        positions consume it.  Positions grouped by
        :func:`~repro.plan.handles.group_chain_sides` necessarily carry
        identical pre-filters (byte-identical tokens imply identical
        selections), so one side stream covers every grouped position.

        Returns ``(sources, position_rows)`` — the second element being
        each chain position's live candidate rows on this shard, in
        global indices, for the coordinator's per-position feed filter.
        """
        if qos is None:
            qos = _query_qos(query)
        groups = group_chain_sides(query, self.server.scheme.backend)
        position_rows: list[list[int]] = [[] for _ in query.tables]
        sources: list[ChainSideSource] = []
        try:
            for group in groups:
                descriptor = self._descriptors[group.table]
                candidates, stream = self.server.open_side_stream(
                    group.table,
                    group.token,
                    group.prefilters[0],
                    qos=qos,
                    engine=engine,
                )
                table = self.server.table(group.table)
                global_rows = [
                    descriptor.global_indices[i] for i in candidates
                ]
                payloads = [table.payloads[i] for i in candidates]
                for position in group.positions:
                    position_rows[position] = list(global_rows)
                sources.append(
                    ChainSideSource(
                        group.positions, stream, global_rows, payloads
                    )
                )
        except BaseException:
            for source in sources:
                source.close()
            raise
        return sources, position_rows


class _GuardedSource:
    """Tags a shard's source so its failures name the shard.

    Pool death (``QueryError`` from a closed/unrescuable service) and
    transport loss (``NetworkError``) become
    :class:`ShardUnavailableError`; deadline expiry passes through
    untranslated — running out of time is a property of the query, not
    of shard health.
    """

    def __init__(self, ordinal: int, shard, source):
        self.ordinal = ordinal
        self.shard = shard
        self.source = source

    def __iter__(self) -> "_GuardedSource":
        return self

    def __next__(self):
        try:
            return next(self.source)
        except (StopIteration, DeadlineError, ShardUnavailableError):
            raise
        except (QueryError, NetworkError) as error:
            raise ShardUnavailableError(
                f"shard {self._describe()} failed mid-scatter: {error}"
            ) from error

    def _describe(self) -> str:
        name = getattr(self.shard, "name", None)
        return f"{self.ordinal} ({name})" if name else str(self.ordinal)

    def close(self) -> None:
        self.source.close()

    @property
    def outcome(self):
        return getattr(self.source, "outcome", None)


def _query_qos(query: EncryptedJoinQuery) -> QueryQoS | None:
    """Stamp the query's relative QoS against this process's clock."""
    priority = getattr(query, "priority", 0) or 0
    relative_deadline = getattr(query, "deadline", None)
    if not priority and relative_deadline is None:
        return None
    return QueryQoS(
        priority=priority,
        deadline=(
            time.monotonic() + relative_deadline
            if relative_deadline is not None
            else None
        ),
    )


class ShardCoordinator:
    """Co-admits a query on every shard and merges the match streams."""

    def __init__(
        self,
        shards,
        series_cache_bytes: int | None = DEFAULT_SERIES_BUDGET,
    ):
        if not shards:
            raise SchemeError("a shard coordinator needs at least one shard")
        self.shards = list(shards)
        self._validate_layouts()
        #: Adversary view per query, mirroring
        #: :attr:`~repro.core.server.SecureJoinServer.observations` —
        #: the coordinator sees every handle the shards computed.
        self.observations: list[QueryObservation] = []
        # The coordinator keeps its *own* series cache (handles plus
        # payloads — it holds no tables to re-read them from), but only
        # when every shard exposes the maintenance counters and a
        # keying backend; a remote shard without them silently bypasses
        # caching rather than risking stale replays.
        capable = all(
            hasattr(shard, "table_version")
            and hasattr(shard, "table_epoch")
            and hasattr(shard, "tombstoned_global_rows")
            for shard in self.shards
        ) and getattr(self.shards[0], "backend", None) is not None
        self.series_cache: SeriesCache | None = (
            SeriesCache(series_cache_bytes)
            if series_cache_bytes and capable
            else None
        )

    def _table_epochs(self, name: str) -> tuple[int, ...]:
        return tuple(shard.table_epoch(name) for shard in self.shards)

    def _table_versions(self, name: str) -> tuple[int, ...]:
        return tuple(shard.table_version(name) for shard in self.shards)

    def _tombstoned_rows(self, name: str) -> set[int]:
        doomed: set[int] = set()
        for shard in self.shards:
            doomed |= shard.tombstoned_global_rows(name)
        return doomed

    # -- dynamic updates --------------------------------------------------
    def insert_row(
        self,
        table_name: str,
        ciphertext,
        payload: bytes,
        prefilter_tags: dict[str, bytes] | None = None,
    ) -> int:
        """Insert one client-encrypted row into the sharded store.

        The row lands on the shard the partitioner's hash names (same
        key function as :func:`~repro.shard.partition.partition_rows`,
        so a later repartition reproduces the placement), under a fresh
        global index past every shard's maximum.  Returns that global
        index.
        """
        layouts = [
            shard.layout
            for shard in self.shards
            if getattr(shard, "layout", None) is not None
        ]
        if not layouts:
            raise SchemeError(
                "cannot insert before any partitioned table is stored"
            )
        _, shard_count, seed = layouts[0]
        key = self.shards[0].row_key(ciphertext, prefilter_tags)
        target_index = shard_of_bytes(key, shard_count, seed)
        by_index = {
            shard.layout[0]: shard
            for shard in self.shards
            if getattr(shard, "layout", None) is not None
        }
        target = by_index.get(target_index)
        if target is None:
            raise SchemeError(
                f"no shard holds partition index {target_index}"
            )
        global_index = 1 + max(
            shard.max_global_index(table_name) for shard in self.shards
        )
        target.insert_row(
            table_name, ciphertext, payload, prefilter_tags, global_index
        )
        return global_index

    def delete_rows(self, table_name: str, global_indices) -> int:
        """Tombstone global rows wherever they live; returns the count
        of rows that existed somewhere."""
        return sum(
            shard.delete_rows(table_name, list(global_indices))
            for shard in self.shards
        )

    def _validate_layouts(self) -> None:
        layouts = [
            shard.layout
            for shard in self.shards
            if getattr(shard, "layout", None) is not None
        ]
        counts = {(count, seed) for _, count, seed in layouts}
        if len(counts) > 1:
            raise SchemeError(
                "shards disagree on the partition layout (count/seed); "
                "repartition the store explicitly with partition_table"
            )
        if counts:
            ((count, _),) = counts
            if count != len(self.shards):
                raise SchemeError(
                    f"tables were partitioned for {count} shards but the "
                    f"coordinator drives {len(self.shards)}; repartition "
                    "explicitly with partition_table — shard-count changes "
                    "are never implicit"
                )
            indices = [index for index, _, _ in layouts]
            if len(set(indices)) != len(indices):
                raise SchemeError(
                    "two shards claim the same shard index; each shard "
                    "must hold a distinct partition"
                )

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Close every shard (their pools / connections).  Idempotent."""
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _backend_name(self) -> str:
        return self.shards[0].backend_name

    def _select_matcher(self, algorithm, stats, build_rows, probe_rows):
        if algorithm == "auto":
            from repro.bench.costmodel import (
                choose_matcher,
                default_engine_cost_model,
            )

            model = default_engine_cost_model(self._backend_name())
            chosen, estimates = choose_matcher(
                model, build_rows=build_rows, probe_rows=probe_rows
            )
            if stats.planner is None:
                stats.planner = []
            stats.planner.append({
                "stage": "match",
                "build_rows": build_rows,
                "probe_rows": probe_rows,
                "chosen": chosen,
                "estimates": {
                    name: float(sec) for name, sec in estimates.items()
                },
            })
        else:
            chosen = algorithm
        stats.matcher = chosen
        return get_matcher(chosen)

    # -- query execution --------------------------------------------------
    def stream_join(
        self,
        query: EncryptedJoinQuery,
        algorithm: str = "hash",
        engine: ExecutionEngine | str | None = None,
    ):
        """The sharded mirror of ``SecureJoinServer.stream_join``.

        Yields :class:`~repro.core.server.MatchBatch` increments in
        discovery order as shard chunks arrive, and returns the final
        canonical :class:`~repro.core.server.EncryptedJoinResult` as
        the generator's value — byte-identical (pairs and payloads) to
        the single-store join over the unpartitioned tables.
        ``engine`` is forwarded to every shard by *name*, so each
        shard resolves it against its own pool.
        """
        events = self._scatter_events(query, algorithm, engine)
        try:
            while True:
                try:
                    batch = next(events)
                except StopIteration as stop:
                    return stop.value
                yield batch
        finally:
            events.close()

    def execute_join(
        self,
        query: EncryptedJoinQuery,
        algorithm: str = "hash",
        engine: ExecutionEngine | str | None = None,
    ) -> EncryptedJoinResult:
        """Run the scatter-gather join fully materialized."""
        events = self._scatter_events(query, algorithm, engine)
        while True:
            try:
                next(events)
            except StopIteration as stop:
                return stop.value

    # -- multi-way chains --------------------------------------------------
    def stream_chain(
        self,
        query,
        engine: ExecutionEngine | str | None = None,
    ):
        """The sharded mirror of ``SecureJoinServer.stream_chain``.

        Every shard scatters one decrypt stream per distinct (table,
        token) side of the chain — the handle pool applied shard-
        locally — and the coordinator merges all shards' chunks, in
        global indices, into one central
        :class:`~repro.plan.executor.ChainExecutor` whose order the
        planner chose from the *merged* candidate counts.  Yields
        :class:`~repro.core.server.ChainMatchBatch` increments in
        discovery order; returns the final canonical
        :class:`~repro.core.server.EncryptedChainResult` as the
        generator's value — byte-identical to the single-store chain
        over the unpartitioned tables, whatever the shard count.

        Chain scatters are not series-cached at the coordinator (the
        retained-executor bookkeeping is per-store; a follow-up), and
        they require shards that expose ``open_chain_sources`` — a
        remote shard raises :class:`~repro.errors.QueryError` until the
        shard wire protocol grows a chain scatter frame.
        """
        events = self._chain_scatter_events(query, engine)
        try:
            while True:
                try:
                    batch = next(events)
                except StopIteration as stop:
                    return stop.value
                yield batch
        finally:
            events.close()

    def execute_chain(
        self,
        query,
        engine: ExecutionEngine | str | None = None,
    ) -> EncryptedChainResult:
        """Run the scatter-gather chain join fully materialized."""
        events = self._chain_scatter_events(query, engine)
        while True:
            try:
                next(events)
            except StopIteration as stop:
                return stop.value

    def _chain_scatter_events(self, query, engine):
        n = len(query.tables)
        if not 2 <= n <= MAX_CHAIN_TABLES:
            raise QueryError(
                f"a chain query needs 2..{MAX_CHAIN_TABLES} tables, got {n}"
            )
        if len(query.tokens) != n or len(query.prefilters) != n:
            raise QueryError(
                "chain query tables, tokens and prefilters must align"
            )
        for shard in self.shards:
            if not hasattr(shard, "open_chain_sources"):
                name = getattr(shard, "name", None)
                raise QueryError(
                    f"shard {name!r} cannot scatter chain queries; the "
                    "shard wire protocol has no chain frame yet — run "
                    "multi-way chains against in-process shards"
                )
        stats = ServerStats(
            engine_source="override" if engine is not None else "default"
        )
        stats.shards = len(self.shards)
        observation = QueryObservation(query.query_id)
        qos = _query_qos(query)
        relative_deadline = getattr(query, "deadline", None)

        # Scatter: every shard opens its distinct chain sides before
        # any chunk is pulled, so all pools co-admit the query.
        sources: list[_GuardedSource] = []
        position_rows: list[set[int]] = [set() for _ in range(n)]
        try:
            for ordinal, shard in enumerate(self.shards):
                shard_sources, shard_rows = shard.open_chain_sources(
                    query, engine=engine, qos=qos
                )
                for source in shard_sources:
                    sources.append(_GuardedSource(ordinal, shard, source))
                for position, rows in enumerate(shard_rows):
                    position_rows[position].update(rows)
        except BaseException:
            for guarded in sources:
                guarded.close()
            raise
        stats.candidates_left = len(position_rows[0])
        stats.candidates_right = len(position_rows[-1])

        # Plan over the merged global candidate counts: shard-local
        # counts would mis-rank orders under partition skew.
        from repro.bench.costmodel import default_engine_cost_model

        model = default_engine_cost_model(self._backend_name())
        plan = compile_plan(model, [len(rows) for rows in position_rows])
        if stats.planner is None:
            stats.planner = []
        stats.planner.append(plan.record())
        stats.plan_nodes = n - 1
        stats.matcher = "hash"
        executor = ChainExecutor(plan.order)
        groups = group_chain_sides(query, self.shards[0].backend)
        stats.handle_pool_hits = n - len(groups)

        tables = list(query.tables)
        # The coordinator holds no tables, so payloads ride the item
        # 3-tuples and accumulate per position for batch/final output.
        payload_maps: list[dict[int, bytes]] = [{} for _ in range(n)]

        def on_items(positions, items) -> None:
            table_name = tables[positions[0]]
            for row, handle, payload in items:
                observation.handles[(table_name, row)] = handle
                for position in positions:
                    payload_maps[position][row] = payload

        def tuple_payloads(combos) -> list[tuple[bytes, ...]]:
            return [
                tuple(
                    payload_maps[position][row]
                    for position, row in enumerate(combo)
                )
                for combo in combos
            ]

        pipeline = run_chain_pipeline(
            sources, executor, position_rows, on_items=on_items
        )
        try:
            while True:
                try:
                    new_tuples = next(pipeline)
                except StopIteration as stop:
                    outcome = stop.value
                    break
                if qos is not None and qos.expired():
                    raise DeadlineError(
                        f"query {query.query_id} exceeded its deadline "
                        f"of {relative_deadline}s; cancelled mid-chain"
                    )
                yield ChainMatchBatch(
                    tuples=list(new_tuples),
                    payloads=tuple_payloads(new_tuples),
                )
        finally:
            pipeline.close()
            # Close the shard streams directly too: closing a pipeline
            # that never started does not run its body's cleanup.
            for guarded in sources:
                guarded.close()
            self.observations.append(observation)

        # Gather accounting: each side stream covers one distinct side
        # of one shard, so its row count is that shard's decrypt load.
        shard_rows = [0] * len(self.shards)
        for guarded in sources:
            rows = len(getattr(guarded.source, "rows", None) or ())
            shard_rows[guarded.ordinal] += rows
            result = guarded.outcome
            if isinstance(result, EngineReport):
                stats.merge_report(result)
        stats.decryptions = sum(shard_rows)
        stats.shard_skew = shard_skew(shard_rows)
        self._record_scatter_plan(stats, shard_rows)

        tuples = outcome.tuples
        stats.matches = len(tuples)
        stats.probes = executor.probes
        stats.comparisons = executor.comparisons
        stats.time_to_first_match = outcome.time_to_first_match
        stats.decrypt_seconds = outcome.decrypt_seconds
        stats.match_seconds = outcome.match_seconds
        return EncryptedChainResult(
            tables=tuple(query.tables),
            tuples=tuples,
            payloads=tuple_payloads(tuples),
            stats=stats,
        )

    def _scatter_events(self, query, algorithm, engine):
        if algorithm not in MATCH_ALGORITHMS:
            raise QueryError(f"unknown join algorithm {algorithm!r}")
        stats = ServerStats(
            engine_source="override" if engine is not None else "default"
        )
        stats.shards = len(self.shards)
        observation = QueryObservation(query.query_id)
        qos = _query_qos(query)
        relative_deadline = getattr(query, "deadline", None)

        cache = self.series_cache
        # Mirror of the server's rule: a concrete engine override is an
        # instruction to execute, so it bypasses replay; None / "auto"
        # accept the cached plan.
        replay_eligible = engine is None or engine == "auto"
        key = b""
        if cache is not None:
            key = series_key(query, self.shards[0].backend)
        if cache is not None and replay_eligible:
            epochs = (
                self._table_epochs(query.left_table),
                self._table_epochs(query.right_table),
            )
            entry = cache.lookup(key, epochs)
            if entry is not None and algorithm not in (
                "auto",
                entry.matcher_name,
            ):
                # An explicit matcher request must actually exercise
                # that matcher; the from-scratch pass replaces the entry.
                entry = None
            if entry is not None:
                versions = (
                    self._table_versions(query.left_table),
                    self._table_versions(query.right_table),
                )
                # Non-blocking: a contended entry (another query mid-
                # replay or mid-refresh) is not worth waiting on — the
                # from-scratch scatter below is always correct, and the
                # contention is counted so the trade-off is observable.
                if entry.lock.acquire(blocking=False):
                    try:
                        if entry.versions == versions:
                            return (
                                yield from self._series_replay_events(
                                    entry, query, stats
                                )
                            )
                        return (
                            yield from self._series_delta_events(
                                entry, query, engine, stats, qos, versions
                            )
                        )
                    finally:
                        entry.lock.release()
                cache.stats.lock_contention += 1
        if cache is not None:
            # Snapshot the maintenance state before any scatter work so
            # a concurrent mutation surfaces as a version mismatch on
            # the next lookup instead of silently staling the entry.
            miss_epochs = (
                self._table_epochs(query.left_table),
                self._table_epochs(query.right_table),
            )
            miss_versions = (
                self._table_versions(query.left_table),
                self._table_versions(query.right_table),
            )
            miss_tombstones = {
                LEFT: self._tombstoned_rows(query.left_table),
                RIGHT: self._tombstoned_rows(query.right_table),
            }

        # Scatter: open every shard's sides before pulling any chunk, so
        # all pools co-admit the query and interleave from the start.
        sources: list[_GuardedSource] = []
        try:
            for ordinal, shard in enumerate(self.shards):
                for source in shard.open_scatter_sources(
                    query, engine=engine, qos=qos
                ):
                    sources.append(_GuardedSource(ordinal, shard, source))
        except BaseException:
            for guarded in sources:
                guarded.close()
            raise

        # Local sources know their candidate counts now; remote shards
        # report theirs in the scatter-final outcome.  The auto matcher
        # prices with what is known up front.
        known = {LEFT: 0, RIGHT: 0}
        for guarded in sources:
            side = getattr(guarded.source, "side", None)
            rows = getattr(guarded.source, "rows", None)
            if side in known and rows is not None:
                known[side] += len(rows)
        matcher = self._select_matcher(
            algorithm, stats, known[LEFT], known[RIGHT]
        )

        tables = {LEFT: query.left_table, RIGHT: query.right_table}
        payloads: dict[str, dict[int, bytes]] = {LEFT: {}, RIGHT: {}}
        retained: dict[str, dict[int, bytes]] | None = (
            {LEFT: {}, RIGHT: {}} if cache is not None else None
        )

        def on_items(side: str, items: list) -> None:
            table_name = tables[side]
            payload_map = payloads[side]
            for row, handle, payload in items:
                payload_map[row] = payload
                observation.handles[(table_name, row)] = handle
            if retained is not None:
                side_handles = retained[side]
                for row, handle, _ in items:
                    side_handles[row] = handle

        pipeline = run_scatter_pipeline(sources, matcher, on_items=on_items)
        try:
            while True:
                try:
                    new_pairs = next(pipeline)
                except StopIteration as stop:
                    outcome = stop.value
                    break
                if qos is not None and qos.expired():
                    raise DeadlineError(
                        f"query {query.query_id} exceeded its deadline "
                        f"of {relative_deadline}s; cancelled mid-join"
                    )
                yield MatchBatch(
                    index_pairs=list(new_pairs),
                    left_payloads=[
                        payloads[LEFT][i] for i, _ in new_pairs
                    ],
                    right_payloads=[
                        payloads[RIGHT][j] for _, j in new_pairs
                    ],
                )
        finally:
            # Closes every shard's streams (releasing their pool
            # admissions) even when one shard failed or the consumer
            # abandoned the stream; the partial adversary view is
            # recorded regardless — those handles were computed.
            pipeline.close()
            self.observations.append(observation)

        # Gather accounting: per-shard candidate loads (for the skew
        # figure), per-side engine reports, matcher stats.
        shard_rows = [0] * len(self.shards)
        candidates = {LEFT: 0, RIGHT: 0}
        for guarded in sources:
            result = guarded.outcome
            if isinstance(result, ScatterOutcome):
                shard_rows[guarded.ordinal] += (
                    result.candidates_left + result.candidates_right
                )
                candidates[LEFT] += result.candidates_left
                candidates[RIGHT] += result.candidates_right
                for report in (result.left_report, result.right_report):
                    if report is not None:
                        stats.merge_report(report)
            else:
                rows = len(getattr(guarded.source, "rows", None) or ())
                side = getattr(guarded.source, "side", None)
                shard_rows[guarded.ordinal] += rows
                if side in candidates:
                    candidates[side] += rows
                if isinstance(result, EngineReport):
                    stats.merge_report(result)
        stats.candidates_left = candidates[LEFT]
        stats.candidates_right = candidates[RIGHT]
        stats.decryptions = candidates[LEFT] + candidates[RIGHT]
        stats.shard_skew = shard_skew(shard_rows)
        self._record_scatter_plan(stats, shard_rows)

        pairs = outcome.pairs
        stats.matches = len(pairs)
        stats.probes = matcher.stats.probes
        stats.comparisons = matcher.stats.comparisons
        stats.time_to_first_match = outcome.timings.time_to_first_match
        stats.decrypt_seconds = outcome.timings.decrypt_seconds
        stats.match_seconds = outcome.timings.match_seconds
        if cache is not None:
            entry = SeriesEntry(
                key,
                query.left_table,
                query.right_table,
                miss_epochs,
                miss_versions,
                matcher,
                stats.matcher,
            )
            entry.handles = retained
            # Payloads retained too: on a replay the coordinator has no
            # local tables to re-read them from.
            entry.payloads = {
                LEFT: dict(payloads[LEFT]),
                RIGHT: dict(payloads[RIGHT]),
            }
            entry.applied_tombstones = miss_tombstones
            cache.store(entry)
        return EncryptedJoinResult(
            left_table=query.left_table,
            right_table=query.right_table,
            index_pairs=pairs,
            left_payloads=[payloads[LEFT][i] for i, _ in pairs],
            right_payloads=[payloads[RIGHT][j] for _, j in pairs],
            stats=stats,
        )

    def _series_replay_events(
        self,
        entry: SeriesEntry,
        query: EncryptedJoinQuery,
        stats: ServerStats,
    ):
        """Warm sharded replay: no shard is contacted, no stream opens."""
        pairs = entry.matcher.finish()
        entry.replays += 1
        if self.series_cache is not None:
            self.series_cache.stats.replays += 1
        stats.series_cache_hits = 1
        stats.reused_handles = entry.reused_handles()
        stats.matches = len(pairs)
        stats.probes = entry.matcher.stats.probes
        stats.comparisons = entry.matcher.stats.comparisons
        stats.matcher = entry.matcher_name
        stats.engine = "series"
        stats.engine_selected = "series"
        stats.candidates_left = len(entry.handles[LEFT])
        stats.candidates_right = len(entry.handles[RIGHT])
        stats.planner = [
            {
                "stage": "series",
                "outcome": "replay",
                "reused_handles": stats.reused_handles,
                "pairs": len(pairs),
            }
        ]
        observation = QueryObservation(query.query_id)
        tables = {LEFT: query.left_table, RIGHT: query.right_table}
        for side, table_name in tables.items():
            for row, handle in entry.handles[side].items():
                observation.handles[(table_name, row)] = handle
        self.observations.append(observation)
        left_payloads = [entry.payloads[LEFT][i] for i, _ in pairs]
        right_payloads = [entry.payloads[RIGHT][j] for _, j in pairs]
        if pairs:
            yield MatchBatch(
                index_pairs=list(pairs),
                left_payloads=list(left_payloads),
                right_payloads=list(right_payloads),
            )
        return EncryptedJoinResult(
            left_table=query.left_table,
            right_table=query.right_table,
            index_pairs=pairs,
            left_payloads=left_payloads,
            right_payloads=right_payloads,
            stats=stats,
        )

    def _series_delta_events(
        self,
        entry: SeriesEntry,
        query: EncryptedJoinQuery,
        engine: ExecutionEngine | str | None,
        stats: ServerStats,
        qos: QueryQoS | None,
        versions,
    ):
        """Sharded delta refresh: scatter only never-seen rows.

        Newly tombstoned global rows are withdrawn from the retained
        matcher first, then every shard is asked for its sides *minus*
        the rows the coordinator already holds handles for — each shard
        decrypts only its slice of the delta.
        """
        cache = self.series_cache
        matcher = entry.matcher
        relative_deadline = getattr(query, "deadline", None)
        for side, table_name in (
            (LEFT, query.left_table),
            (RIGHT, query.right_table),
        ):
            current = self._tombstoned_rows(table_name)
            new = current - entry.applied_tombstones[side]
            doomed = [i for i in new if i in entry.handles[side]]
            if doomed:
                if side == LEFT:
                    matcher.retract_left(doomed)
                else:
                    matcher.retract_right(doomed)
                for i in doomed:
                    del entry.handles[side][i]
                    entry.payloads[side].pop(i, None)
            entry.applied_tombstones[side] |= new
        stats.series_cache_hits = 1
        stats.reused_handles = entry.reused_handles()
        stats.matcher = entry.matcher_name

        exclude = {
            LEFT: set(entry.handles[LEFT]),
            RIGHT: set(entry.handles[RIGHT]),
        }
        sources: list[_GuardedSource] = []
        try:
            for ordinal, shard in enumerate(self.shards):
                for source in shard.open_scatter_sources(
                    query, engine=engine, qos=qos, exclude=exclude
                ):
                    sources.append(_GuardedSource(ordinal, shard, source))
        except BaseException:
            for guarded in sources:
                guarded.close()
            raise

        # Stream the retained pairs first so the union of yielded
        # batches still equals the final canonical result.
        retained_pairs = matcher.finish()
        if retained_pairs:
            yield MatchBatch(
                index_pairs=list(retained_pairs),
                left_payloads=[
                    entry.payloads[LEFT][i] for i, _ in retained_pairs
                ],
                right_payloads=[
                    entry.payloads[RIGHT][j] for _, j in retained_pairs
                ],
            )

        observation = QueryObservation(query.query_id)
        tables = {LEFT: query.left_table, RIGHT: query.right_table}
        for side, table_name in tables.items():
            for row, handle in entry.handles[side].items():
                observation.handles[(table_name, row)] = handle

        def on_items(side: str, items: list) -> None:
            table_name = tables[side]
            side_handles = entry.handles[side]
            side_payloads = entry.payloads[side]
            for row, handle, payload in items:
                observation.handles[(table_name, row)] = handle
                side_handles[row] = handle
                side_payloads[row] = payload

        pipeline = run_scatter_pipeline(sources, matcher, on_items=on_items)
        try:
            while True:
                try:
                    new_pairs = next(pipeline)
                except StopIteration as stop:
                    outcome = stop.value
                    break
                if qos is not None and qos.expired():
                    raise DeadlineError(
                        f"query {query.query_id} exceeded its deadline "
                        f"of {relative_deadline}s; cancelled mid-refresh"
                    )
                yield MatchBatch(
                    index_pairs=list(new_pairs),
                    left_payloads=[
                        entry.payloads[LEFT][i] for i, _ in new_pairs
                    ],
                    right_payloads=[
                        entry.payloads[RIGHT][j] for _, j in new_pairs
                    ],
                )
        finally:
            pipeline.close()
            self.observations.append(observation)

        # Gather accounting over the delta scatter only.
        shard_rows = [0] * len(self.shards)
        delta_rows = 0
        for guarded in sources:
            result = guarded.outcome
            if isinstance(result, ScatterOutcome):
                rows = result.candidates_left + result.candidates_right
                shard_rows[guarded.ordinal] += rows
                delta_rows += rows
                for report in (result.left_report, result.right_report):
                    if report is not None:
                        stats.merge_report(report)
            else:
                rows = len(getattr(guarded.source, "rows", None) or ())
                shard_rows[guarded.ordinal] += rows
                delta_rows += rows
                if isinstance(result, EngineReport):
                    stats.merge_report(result)
        stats.delta_rows = delta_rows
        stats.decryptions = delta_rows
        stats.candidates_left = len(entry.handles[LEFT])
        stats.candidates_right = len(entry.handles[RIGHT])
        stats.shard_skew = shard_skew(shard_rows)
        if stats.planner is None:
            stats.planner = []
        stats.planner.append({
            "stage": "delta",
            "rows": delta_rows,
            "rows_per_shard": list(shard_rows),
            "reused_handles": stats.reused_handles,
        })

        pairs = outcome.pairs
        stats.matches = len(pairs)
        stats.probes = matcher.stats.probes
        stats.comparisons = matcher.stats.comparisons
        stats.time_to_first_match = outcome.timings.time_to_first_match
        stats.decrypt_seconds = outcome.timings.decrypt_seconds
        stats.match_seconds = outcome.timings.match_seconds
        entry.versions = versions
        entry.delta_refreshes += 1
        if cache is not None:
            cache.stats.delta_refreshes += 1
            cache.reaccount(entry)
        return EncryptedJoinResult(
            left_table=query.left_table,
            right_table=query.right_table,
            index_pairs=pairs,
            left_payloads=[entry.payloads[LEFT][i] for i, _ in pairs],
            right_payloads=[entry.payloads[RIGHT][j] for _, j in pairs],
            stats=stats,
        )

    def _record_scatter_plan(
        self, stats: ServerStats, shard_rows: list[int]
    ) -> None:
        """Append the cross-shard planner record (auditable, like the
        per-side engine records): estimated single-store vs scatter
        seconds and the skew the estimate was discounted by."""
        from repro.bench.costmodel import (
            default_engine_cost_model,
            estimate_scatter_costs,
        )

        model = default_engine_cost_model(self._backend_name())
        estimates = estimate_scatter_costs(
            model,
            shard_rows,
            dimension=max(1, stats.max_batch_size or 1),
            workers=max(1, stats.workers),
        )
        if stats.planner is None:
            stats.planner = []
        stats.planner.append({
            "stage": "scatter",
            "shards": len(shard_rows),
            "rows_per_shard": list(shard_rows),
            "skew": stats.shard_skew,
            "estimates": estimates,
        })
