"""Sharded encrypted store: deterministic partitioning + scatter-gather.

``partition`` splits an encrypted table into per-shard tables with a
process-independent hash (seeded blake2b — never Python's ``hash()``);
``coordinator`` scatters SJ.Dec across per-shard execution pools and
gathers the handle streams into one canonical matcher.  Remote shard
endpoints live in :mod:`repro.net.shard`.
"""

from repro.shard.coordinator import (
    LocalShard,
    ScatterOutcome,
    ShardCoordinator,
)
from repro.shard.partition import (
    DEFAULT_SEED,
    MAX_SHARD_COUNT,
    ShardDescriptor,
    partition_rows,
    partition_table,
    row_shard_keys,
    shard_of_bytes,
    shard_skew,
    validate_shard_layout,
)

__all__ = [
    "DEFAULT_SEED",
    "MAX_SHARD_COUNT",
    "LocalShard",
    "ScatterOutcome",
    "ShardCoordinator",
    "ShardDescriptor",
    "partition_rows",
    "partition_table",
    "row_shard_keys",
    "shard_of_bytes",
    "shard_skew",
    "validate_shard_layout",
]
