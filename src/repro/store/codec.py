"""Low-level binary encoding primitives shared by the store formats.

Every format is ``magic || version || u32 header length || JSON header
|| body``; the body is a concatenation of fixed-size element vectors and
length-prefixed blobs.  All integers are big-endian.
"""

from __future__ import annotations

import json
import struct
import zlib

from repro.errors import SchemeError


class Reader:
    """A cursor over immutable bytes with checked reads."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise SchemeError(
                f"truncated blob: need {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos:self._pos + n]
        self._pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def blob(self) -> bytes:
        return self.take(self.u32())

    @property
    def remaining(self) -> int:
        """Bytes left to read — the budget size claims are checked against."""
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos == len(self._data)

    def expect_end(self) -> None:
        if not self.at_end():
            raise SchemeError(
                f"{len(self._data) - self._pos} unexpected trailing bytes"
            )


class Writer:
    """An append-only byte builder mirroring :class:`Reader`."""

    def __init__(self):
        self._chunks: list[bytes] = []

    def raw(self, data: bytes) -> "Writer":
        self._chunks.append(data)
        return self

    def u8(self, value: int) -> "Writer":
        return self.raw(bytes([value]))

    def u32(self, value: int) -> "Writer":
        return self.raw(struct.pack(">I", value))

    def blob(self, data: bytes) -> "Writer":
        return self.u32(len(data)).raw(data)

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


def write_header(writer: Writer, magic: bytes, version: int, header: dict) -> None:
    """Emit ``magic || version || length || JSON header``."""
    writer.raw(magic)
    writer.u8(version)
    writer.blob(json.dumps(header, sort_keys=True).encode("utf-8"))


def read_header(
    reader: Reader, magic: bytes, version: int, min_version: int | None = None
) -> dict:
    """Parse and validate ``magic || version || length || JSON header``.

    ``min_version`` (default: exactly ``version``) opens a
    backward-compatibility window: formats that only *add* optional
    header fields across versions can accept every version in
    ``[min_version, version]`` and let callers default the missing keys.
    """
    seen = reader.take(len(magic))
    if seen != magic:
        raise SchemeError(
            f"bad magic {seen!r}; expected {magic!r} (wrong file type?)"
        )
    if min_version is None:
        min_version = version
    seen_version = reader.u8()
    if not min_version <= seen_version <= version:
        raise SchemeError(
            f"unsupported format version {seen_version}; this build reads "
            f"versions {min_version}..{version}"
        )
    try:
        header = json.loads(reader.blob().decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SchemeError(f"corrupt header: {error}") from error
    if not isinstance(header, dict):
        raise SchemeError(
            f"corrupt header: expected a JSON object, got "
            f"{type(header).__name__}"
        )
    return header


def write_element_vector(writer: Writer, elements: list[bytes], size: int) -> None:
    """A fixed-element-size vector: count then raw concatenation."""
    writer.u32(len(elements))
    for element in elements:
        if len(element) != size:
            raise SchemeError(
                f"element of {len(element)} bytes in a vector of {size}-byte "
                "elements"
            )
        writer.raw(element)


def read_element_vector(reader: Reader, size: int) -> list[bytes]:
    """Inverse of :func:`write_element_vector` (validating).

    The count is wire-supplied (up to 2^32−1), so it is checked against
    the reader's remaining bytes *before* any element is read: a
    corrupted or hostile count must fail fast, not build a huge list
    element by element until the first truncated read aborts it.
    """
    if size < 1:
        raise SchemeError(f"element size must be positive, got {size}")
    count = reader.u32()
    if count * size > reader.remaining:
        raise SchemeError(
            f"bad element-vector count {count}: {count} elements of "
            f"{size} bytes need {count * size} bytes, but only "
            f"{reader.remaining} remain"
        )
    return [reader.take(size) for _ in range(count)]


def write_compressed_element_vector(
    writer: Writer, elements: list[bytes], size: int, level: int = 6
) -> None:
    """A fixed-element-size vector stored zlib-compressed.

    Layout: ``u32 count || blob(zlib(concatenation))``.  Worth it for
    sections with internal structure (the prepared-row coefficient
    blocks share flag bytes and padding); near-uniform ciphertext bytes
    barely shrink, which is why this is opt-in per section, not the
    default for every vector.
    """
    payload = bytearray()
    for element in elements:
        if len(element) != size:
            raise SchemeError(
                f"element of {len(element)} bytes in a vector of {size}-byte "
                "elements"
            )
        payload += element
    writer.u32(len(elements))
    writer.blob(zlib.compress(bytes(payload), level))


def read_compressed_element_vector(reader: Reader, size: int) -> list[bytes]:
    """Inverse of :func:`write_compressed_element_vector` (validating).

    The expected plaintext size is ``count * size``, known before
    inflating, so decompression is capped at exactly that budget plus
    one probe byte — a zlib bomb (tiny blob, huge expansion) fails fast
    instead of ballooning memory, and a short stream fails loudly.
    """
    if size < 1:
        raise SchemeError(f"element size must be positive, got {size}")
    count = reader.u32()
    compressed = reader.blob()
    expected = count * size
    inflater = zlib.decompressobj()
    try:
        data = inflater.decompress(compressed, expected + 1)
    except zlib.error as error:
        raise SchemeError(f"corrupt compressed vector: {error}") from error
    if len(data) > expected:
        raise SchemeError(
            f"compressed vector inflates past its declared "
            f"{count} x {size} bytes"
        )
    if len(data) != expected or not inflater.eof:
        raise SchemeError(
            f"compressed vector holds {len(data)} bytes; "
            f"{count} elements of {size} bytes need {expected}"
        )
    if inflater.unused_data:
        raise SchemeError(
            "trailing garbage after the compressed vector's zlib stream"
        )
    return [data[i * size:(i + 1) * size] for i in range(count)]
