"""Persistence and wire formats for the outsourced-database protocol.

- :mod:`repro.store.codec` — low-level binary primitives (length
  prefixes, JSON headers, element vectors),
- :mod:`repro.store.tables` — save/load encrypted tables to disk (what
  the DBMS server persists),
- :mod:`repro.store.wire` — serialize the client->server query message
  and the server->client result message, so the two parties can live in
  different processes.
"""

from repro.store.tables import load_encrypted_table, save_encrypted_table
from repro.store.wire import (
    decode_join_query,
    decode_join_result,
    encode_join_query,
    encode_join_result,
)

__all__ = [
    "decode_join_query",
    "decode_join_result",
    "encode_join_query",
    "encode_join_result",
    "load_encrypted_table",
    "save_encrypted_table",
]
