"""Persist encrypted tables: what the DBMS server stores on disk.

The file keeps only what the server legitimately holds — SJ ciphertext
vectors, opaque payload blobs, and (optionally) pre-filter tags.  No
plaintext and no key material ever reaches this format.
"""

from __future__ import annotations

import os

from repro.core.client import EncryptedTable
from repro.core.scheme import SJRowCiphertext
from repro.crypto.backend import BilinearBackend
from repro.db.schema import Column, Schema
from repro.errors import SchemeError
from repro.store.codec import (
    Reader,
    Writer,
    read_element_vector,
    read_header,
    write_element_vector,
    write_header,
)

_MAGIC = b"RPROETBL"
_VERSION = 1
_TAG_SIZE = 32


def encode_encrypted_table(
    table: EncryptedTable, backend: BilinearBackend
) -> bytes:
    """Serialize an encrypted table to bytes."""
    writer = Writer()
    header = {
        "name": table.name,
        "schema": [[c.name, c.type] for c in table.schema.columns],
        "join_column": table.join_column,
        "attribute_columns": list(table.attribute_columns),
        "n_rows": len(table),
        "dimension": (
            len(table.ciphertexts[0]) if table.ciphertexts else 0
        ),
        "backend": backend.name,
        "g2_element_size": backend.g2_element_size,
        "prefilter_columns": (
            sorted(table.prefilter_tags) if table.prefilter_tags else None
        ),
    }
    write_header(writer, _MAGIC, _VERSION, header)
    for ciphertext in table.ciphertexts:
        write_element_vector(
            writer,
            [backend.encode_g2(e) for e in ciphertext.elements],
            backend.g2_element_size,
        )
    for payload in table.payloads:
        writer.blob(payload)
    if table.prefilter_tags:
        for column in sorted(table.prefilter_tags):
            write_element_vector(
                writer, table.prefilter_tags[column], _TAG_SIZE
            )
    return writer.getvalue()


def decode_encrypted_table(
    data: bytes, backend: BilinearBackend
) -> EncryptedTable:
    """Inverse of :func:`encode_encrypted_table` (validating)."""
    reader = Reader(data)
    header = read_header(reader, _MAGIC, _VERSION)
    if header["backend"] != backend.name:
        raise SchemeError(
            f"table was encrypted under backend {header['backend']!r}, "
            f"cannot load with {backend.name!r}"
        )
    if header["g2_element_size"] != backend.g2_element_size:
        raise SchemeError("element size mismatch (different backend modulus?)")
    n_rows = header["n_rows"]
    dimension = header["dimension"]
    ciphertexts = []
    for _ in range(n_rows):
        raw = read_element_vector(reader, backend.g2_element_size)
        if len(raw) != dimension:
            raise SchemeError(
                f"row ciphertext has {len(raw)} elements; header says "
                f"{dimension}"
            )
        ciphertexts.append(
            SJRowCiphertext(tuple(backend.decode_g2(e) for e in raw))
        )
    payloads = [reader.blob() for _ in range(n_rows)]
    prefilter = None
    if header["prefilter_columns"] is not None:
        prefilter = {}
        for column in header["prefilter_columns"]:
            tags = read_element_vector(reader, _TAG_SIZE)
            if len(tags) != n_rows:
                raise SchemeError(
                    f"pre-filter column {column!r} has {len(tags)} tags for "
                    f"{n_rows} rows"
                )
            prefilter[column] = tags
    reader.expect_end()
    schema = Schema(tuple(Column(n, t) for n, t in header["schema"]))
    return EncryptedTable(
        name=header["name"],
        schema=schema,
        join_column=header["join_column"],
        attribute_columns=tuple(header["attribute_columns"]),
        ciphertexts=ciphertexts,
        payloads=payloads,
        prefilter_tags=prefilter,
    )


def save_encrypted_table(
    table: EncryptedTable, path: str | os.PathLike, backend: BilinearBackend
) -> None:
    """Write an encrypted table to ``path`` (atomic via rename)."""
    data = encode_encrypted_table(table, backend)
    temp_path = f"{path}.tmp"
    with open(temp_path, "wb") as handle:
        handle.write(data)
    os.replace(temp_path, path)


def load_encrypted_table(
    path: str | os.PathLike, backend: BilinearBackend
) -> EncryptedTable:
    """Read an encrypted table from ``path``."""
    with open(path, "rb") as handle:
        return decode_encrypted_table(handle.read(), backend)
