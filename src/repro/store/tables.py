"""Persist encrypted tables: what the DBMS server stores on disk.

The file keeps only what the server legitimately holds — SJ ciphertext
vectors, opaque payload blobs, (optionally) pre-filter tags, and
(optionally, format v2) per-row pairing precomputation.  No plaintext
and no key material ever reaches this format; the prepared coefficients
are a deterministic function of the ciphertexts, so they carry no
information the ciphertexts don't already.
"""

from __future__ import annotations

import os

from repro.core.client import EncryptedTable
from repro.core.scheme import SJRowCiphertext
from repro.crypto.backend import BilinearBackend, PreparedRow
from repro.db.schema import Column, Schema
from repro.errors import SchemeError
from repro.shard.partition import ShardDescriptor, validate_shard_layout
from repro.store.codec import (
    Reader,
    Writer,
    read_compressed_element_vector,
    read_element_vector,
    read_header,
    write_compressed_element_vector,
    write_element_vector,
    write_header,
)

_MAGIC = b"RPROETBL"
#: v2 adds the optional prepared-rows section (precomputed Miller-loop
#: line coefficients, stored with the row so warm queries replay them);
#: v3 adds the optional shard descriptor (layout header key plus the
#: shard's global row indices as a trailing u32 section), so one shard's
#: table file round-trips with its place in the partition.  v1/v2 files
#: remain readable — they simply load unprepared / unsharded.
#: v4 adds optional zlib compression of the prepared-rows section
#: (header flag ``prepared_compressed``): the coefficient blocks share
#: flag bytes and zero padding, so the dominant section of a warm table
#: file shrinks.  Ciphertexts and payloads stay uncompressed — they are
#: near-uniform bytes and would only pay CPU for nothing.  v1..v3 files
#: load unchanged (the flag defaults to false).
_VERSION = 4
_MIN_VERSION = 1
_TAG_SIZE = 32
#: Longest accepted hex-encoded partitioner seed (raw seed <= 64 bytes,
#: mirroring :data:`repro.shard.partition._MAX_SEED_SIZE`).
_MAX_SEED_HEX = 128


def prepare_encrypted_table(
    table: EncryptedTable, backend: BilinearBackend
) -> int:
    """Attach per-row pairing precomputation to ``table`` in place.

    Idempotent (rows already prepared are kept); returns how many rows
    this call prepared.  The precomputation depends only on the stored
    ciphertexts — never on any query token — which is why it can live
    with the row on disk.
    """
    if table.prepared_rows is None:
        table.prepared_rows = []
    prepared = 0
    for ciphertext in table.ciphertexts[len(table.prepared_rows):]:
        table.prepared_rows.append(backend.prepare_row(ciphertext.elements))
        prepared += 1
    return prepared


def encode_encrypted_table(
    table: EncryptedTable,
    backend: BilinearBackend,
    compress_prepared: bool = False,
) -> bytes:
    """Serialize an encrypted table to bytes.

    ``compress_prepared`` stores the prepared-rows section (usually the
    bulk of a warm file) zlib-compressed; readers of this build load
    either form, older readers reject the file by version.
    """
    prepared = table.prepared_rows
    if prepared is not None and len(prepared) != len(table.ciphertexts):
        raise SchemeError(
            f"table has {len(prepared)} prepared rows for "
            f"{len(table.ciphertexts)} ciphertexts; call "
            "prepare_encrypted_table first"
        )
    writer = Writer()
    header = {
        "name": table.name,
        "schema": [[c.name, c.type] for c in table.schema.columns],
        "join_column": table.join_column,
        "attribute_columns": list(table.attribute_columns),
        "n_rows": len(table),
        "dimension": (
            len(table.ciphertexts[0]) if table.ciphertexts else 0
        ),
        "backend": backend.name,
        "g2_element_size": backend.g2_element_size,
        "prefilter_columns": (
            sorted(table.prefilter_tags) if table.prefilter_tags else None
        ),
        "prepared": prepared is not None,
        "prepared_element_size": (
            backend.prepared_element_size if prepared is not None else 0
        ),
        "prepared_compressed": bool(compress_prepared and prepared),
    }
    shard = table.shard
    if shard is not None:
        if len(shard.global_indices) != len(table):
            raise SchemeError(
                f"shard descriptor maps {len(shard.global_indices)} rows "
                f"but the table holds {len(table)}"
            )
        header["shard"] = {
            "index": shard.shard_index,
            "count": shard.shard_count,
            "seed": shard.seed.hex(),
        }
    write_header(writer, _MAGIC, _VERSION, header)
    for ciphertext in table.ciphertexts:
        write_element_vector(
            writer,
            [backend.encode_g2(e) for e in ciphertext.elements],
            backend.g2_element_size,
        )
    for payload in table.payloads:
        writer.blob(payload)
    if table.prefilter_tags:
        for column in sorted(table.prefilter_tags):
            write_element_vector(
                writer, table.prefilter_tags[column], _TAG_SIZE
            )
    if prepared is not None:
        if compress_prepared:
            # One stream over the whole section: per-row streams would
            # pay zlib's framing per row and deny the dictionary any
            # cross-row context.  The layout inside is deterministic
            # (n_rows x dimension fixed-size elements), so flattening
            # loses nothing.
            write_compressed_element_vector(
                writer,
                [
                    backend.encode_prepared(e)
                    for row in prepared
                    for e in row
                ],
                backend.prepared_element_size,
            )
        else:
            for row in prepared:
                write_element_vector(
                    writer,
                    [backend.encode_prepared(e) for e in row],
                    backend.prepared_element_size,
                )
    if shard is not None:
        for index in shard.global_indices:
            writer.u32(index)
    return writer.getvalue()


def decode_encrypted_table(
    data: bytes, backend: BilinearBackend
) -> EncryptedTable:
    """Inverse of :func:`encode_encrypted_table` (validating)."""
    reader = Reader(data)
    header = read_header(
        reader, _MAGIC, _VERSION, min_version=_MIN_VERSION
    )
    if header["backend"] != backend.name:
        raise SchemeError(
            f"table was encrypted under backend {header['backend']!r}, "
            f"cannot load with {backend.name!r}"
        )
    if header["g2_element_size"] != backend.g2_element_size:
        raise SchemeError("element size mismatch (different backend modulus?)")
    n_rows = header["n_rows"]
    dimension = header["dimension"]
    ciphertexts = []
    for _ in range(n_rows):
        raw = read_element_vector(reader, backend.g2_element_size)
        if len(raw) != dimension:
            raise SchemeError(
                f"row ciphertext has {len(raw)} elements; header says "
                f"{dimension}"
            )
        ciphertexts.append(
            SJRowCiphertext(tuple(backend.decode_g2(e) for e in raw))
        )
    payloads = [reader.blob() for _ in range(n_rows)]
    prefilter = None
    if header["prefilter_columns"] is not None:
        prefilter = {}
        for column in header["prefilter_columns"]:
            tags = read_element_vector(reader, _TAG_SIZE)
            if len(tags) != n_rows:
                raise SchemeError(
                    f"pre-filter column {column!r} has {len(tags)} tags for "
                    f"{n_rows} rows"
                )
            prefilter[column] = tags
    prepared_rows = None
    if header.get("prepared"):
        element_size = header.get("prepared_element_size")
        if element_size != backend.prepared_element_size:
            raise SchemeError(
                f"prepared-element size {element_size} != backend's "
                f"{backend.prepared_element_size} (different backend?)"
            )
        if header.get("prepared_compressed"):
            flat = read_compressed_element_vector(reader, element_size)
            if len(flat) != n_rows * dimension:
                raise SchemeError(
                    f"compressed prepared section has {len(flat)} "
                    f"elements; header says {n_rows} x {dimension}"
                )
            rows = [
                flat[i * dimension:(i + 1) * dimension]
                for i in range(n_rows)
            ]
        else:
            rows = []
            for row_index in range(n_rows):
                raw = read_element_vector(reader, element_size)
                if len(raw) != dimension:
                    raise SchemeError(
                        f"prepared row {row_index} has {len(raw)} "
                        f"elements; header says {dimension}"
                    )
                rows.append(raw)
        prepared_rows = []
        for row_index, raw in enumerate(rows):
            prepared_rows.append(
                PreparedRow(
                    ciphertexts[row_index].elements,
                    tuple(backend.decode_prepared(e) for e in raw),
                )
            )
    shard = None
    shard_header = header.get("shard")
    if shard_header is not None:
        if not isinstance(shard_header, dict):
            raise SchemeError("shard header must be an object")
        seed_hex = shard_header.get("seed")
        if (
            not isinstance(seed_hex, str)
            or not seed_hex
            or len(seed_hex) > _MAX_SEED_HEX
        ):
            raise SchemeError("shard seed must be a short hex string")
        try:
            seed = bytes.fromhex(seed_hex)
        except ValueError:
            raise SchemeError("shard seed is not valid hex") from None
        index = shard_header.get("index")
        count = shard_header.get("count")
        # validate_shard_layout rejects non-int/bool and out-of-range
        # values before we trust them; the indices section is exactly
        # n_rows u32s, and ShardDescriptor enforces strict monotonicity.
        validate_shard_layout(index, count, seed)
        indices = [reader.u32() for _ in range(n_rows)]
        shard = ShardDescriptor(
            shard_index=index,
            shard_count=count,
            seed=seed,
            global_indices=tuple(indices),
        )
    reader.expect_end()
    schema = Schema(tuple(Column(n, t) for n, t in header["schema"]))
    return EncryptedTable(
        name=header["name"],
        schema=schema,
        join_column=header["join_column"],
        attribute_columns=tuple(header["attribute_columns"]),
        ciphertexts=ciphertexts,
        payloads=payloads,
        prefilter_tags=prefilter,
        prepared_rows=prepared_rows,
        shard=shard,
    )


def save_encrypted_table(
    table: EncryptedTable,
    path: str | os.PathLike,
    backend: BilinearBackend,
    prepare: bool = False,
    compress_prepared: bool = False,
) -> None:
    """Write an encrypted table to ``path`` (atomic via rename).

    ``prepare=True`` attaches per-row pairing precomputation before
    writing (see :func:`prepare_encrypted_table`), so the table loads
    warm: every future query over it replays stored coefficients.
    ``compress_prepared=True`` additionally stores that section
    zlib-compressed (see :func:`encode_encrypted_table`).
    """
    if prepare:
        prepare_encrypted_table(table, backend)
    data = encode_encrypted_table(
        table, backend, compress_prepared=compress_prepared
    )
    temp_path = f"{path}.tmp"
    with open(temp_path, "wb") as handle:
        handle.write(data)
    os.replace(temp_path, path)


def load_encrypted_table(
    path: str | os.PathLike, backend: BilinearBackend
) -> EncryptedTable:
    """Read an encrypted table from ``path``."""
    with open(path, "rb") as handle:
        return decode_encrypted_table(handle.read(), backend)
