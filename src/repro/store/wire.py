"""Wire formats for the query-phase messages.

Two message types cross the client/server boundary at query time:

- the **join query** (client -> server): table names, the two SJ tokens
  and optional pre-filter tag sets;
- the **join result** (server -> client): matched index pairs and the
  corresponding opaque payload blobs.

Together with :mod:`repro.store.tables` this lets the two parties run in
separate processes (or machines) with nothing but byte strings between
them — the deployment model of the paper's system.
"""

from __future__ import annotations

import dataclasses

from repro.core.client import EncryptedJoinQuery
from repro.core.scheme import SJToken
from repro.core.server import EncryptedJoinResult, ServerStats
from repro.crypto.backend import BilinearBackend
from repro.errors import SchemeError
from repro.store.codec import (
    Reader,
    Writer,
    read_element_vector,
    read_header,
    write_element_vector,
    write_header,
)

_QUERY_MAGIC = b"RPROJQRY"
_RESULT_MAGIC = b"RPROJRES"
# Version 2: queries carry ``engine_hint``; result stats carry the
# execution-engine fields (engine, batches, workers, pairing op counts)
# plus — since the planner PR — ``engine_source`` / ``engine_selected``,
# the per-side ``planner`` records and the persistent-pool lifecycle
# counters.
# Version 3 (the streaming-pipeline PR): result stats additionally
# carry the matcher choice (``matcher``), the pipeline stage timings
# (``time_to_first_match`` / ``decrypt_seconds`` / ``match_seconds``)
# and the admission counter ``concurrent_sides``.  All stats additions
# are optional JSON header keys, so version-1 and version-2 payloads
# still decode: missing stats fields take their dataclass defaults,
# unknown ones from newer minor revisions are ignored.
_VERSION = 3
_MIN_VERSION = 1
_TAG_SIZE = 32

_STATS_FIELDS = {field.name for field in dataclasses.fields(ServerStats)}


def _write_prefilter(
    writer: Writer, prefilter: dict[str, frozenset[bytes]] | None
) -> list[str] | None:
    if prefilter is None:
        return None
    columns = sorted(prefilter)
    for column in columns:
        write_element_vector(writer, sorted(prefilter[column]), _TAG_SIZE)
    return columns


def encode_join_query(
    query: EncryptedJoinQuery, backend: BilinearBackend
) -> bytes:
    """Serialize the client's query message."""
    writer = Writer()
    body = Writer()
    for token in (query.left_token, query.right_token):
        write_element_vector(
            body,
            [backend.encode_g1(e) for e in token.elements],
            backend.g1_element_size,
        )
    left_columns = _write_prefilter(body, query.left_prefilter)
    right_columns = _write_prefilter(body, query.right_prefilter)
    header = {
        "query_id": query.query_id,
        "left_table": query.left_table,
        "right_table": query.right_table,
        "backend": backend.name,
        "g1_element_size": backend.g1_element_size,
        "left_prefilter_columns": left_columns,
        "right_prefilter_columns": right_columns,
        "engine_hint": query.engine_hint,
    }
    write_header(writer, _QUERY_MAGIC, _VERSION, header)
    writer.raw(body.getvalue())
    return writer.getvalue()


def decode_join_query(
    data: bytes, backend: BilinearBackend
) -> EncryptedJoinQuery:
    """Inverse of :func:`encode_join_query` (validating)."""
    reader = Reader(data)
    header = read_header(reader, _QUERY_MAGIC, _VERSION, _MIN_VERSION)
    if header["backend"] != backend.name:
        raise SchemeError(
            f"query was built for backend {header['backend']!r}, "
            f"cannot decode with {backend.name!r}"
        )
    tokens = []
    for _ in range(2):
        raw = read_element_vector(reader, backend.g1_element_size)
        tokens.append(SJToken(tuple(backend.decode_g1(e) for e in raw)))

    def read_prefilter(columns):
        if columns is None:
            return None
        return {
            column: frozenset(read_element_vector(reader, _TAG_SIZE))
            for column in columns
        }

    left_prefilter = read_prefilter(header["left_prefilter_columns"])
    right_prefilter = read_prefilter(header["right_prefilter_columns"])
    reader.expect_end()
    return EncryptedJoinQuery(
        query_id=header["query_id"],
        left_table=header["left_table"],
        right_table=header["right_table"],
        left_token=tokens[0],
        right_token=tokens[1],
        left_prefilter=left_prefilter,
        right_prefilter=right_prefilter,
        engine_hint=header.get("engine_hint"),
    )


def encode_join_result(result: EncryptedJoinResult) -> bytes:
    """Serialize the server's result message."""
    writer = Writer()
    header = {
        "left_table": result.left_table,
        "right_table": result.right_table,
        "n_pairs": len(result.index_pairs),
        "stats": {
            "candidates_left": result.stats.candidates_left,
            "candidates_right": result.stats.candidates_right,
            "decryptions": result.stats.decryptions,
            "probes": result.stats.probes,
            "comparisons": result.stats.comparisons,
            "matches": result.stats.matches,
            "engine": result.stats.engine,
            "batches": result.stats.batches,
            "max_batch_size": result.stats.max_batch_size,
            "workers": result.stats.workers,
            "miller_loops": result.stats.miller_loops,
            "final_exponentiations": result.stats.final_exponentiations,
            "engine_source": result.stats.engine_source,
            "engine_selected": result.stats.engine_selected,
            "planner": result.stats.planner,
            "pool_generation": result.stats.pool_generation,
            "worker_restarts": result.stats.worker_restarts,
            "matcher": result.stats.matcher,
            "time_to_first_match": result.stats.time_to_first_match,
            "decrypt_seconds": result.stats.decrypt_seconds,
            "match_seconds": result.stats.match_seconds,
            "concurrent_sides": result.stats.concurrent_sides,
        },
    }
    write_header(writer, _RESULT_MAGIC, _VERSION, header)
    for left_index, right_index in result.index_pairs:
        writer.u32(left_index)
        writer.u32(right_index)
    for payload in result.left_payloads:
        writer.blob(payload)
    for payload in result.right_payloads:
        writer.blob(payload)
    return writer.getvalue()


def decode_join_result(data: bytes) -> EncryptedJoinResult:
    """Inverse of :func:`encode_join_result` (validating)."""
    reader = Reader(data)
    header = read_header(reader, _RESULT_MAGIC, _VERSION, _MIN_VERSION)
    n_pairs = header["n_pairs"]
    pairs = [(reader.u32(), reader.u32()) for _ in range(n_pairs)]
    left_payloads = [reader.blob() for _ in range(n_pairs)]
    right_payloads = [reader.blob() for _ in range(n_pairs)]
    reader.expect_end()
    # Tolerant stats decode: absent fields (older payloads) default,
    # unknown fields (newer minor revisions) are dropped.
    stats = ServerStats(**{
        key: value
        for key, value in header["stats"].items()
        if key in _STATS_FIELDS
    })
    return EncryptedJoinResult(
        left_table=header["left_table"],
        right_table=header["right_table"],
        index_pairs=pairs,
        left_payloads=left_payloads,
        right_payloads=right_payloads,
        stats=stats,
    )
