"""Wire formats for the query-phase messages.

Message types crossing the client/server boundary at query time:

- the **join query** (client -> server): table names, the two SJ tokens,
  optional pre-filter tag sets, and — since version 4 — the query's
  scheduling QoS (``priority`` and a relative ``deadline``);
- the **join result** (server -> client): matched index pairs and the
  corresponding opaque payload blobs, fully materialized;
- the **result stream frames** (server -> client, version 4): a
  stream-header frame, repeated match-batch frames carrying pairs and
  payloads in discovery order, and a final frame carrying the canonical
  pair order plus :class:`~repro.core.server.ServerStats` — so a remote
  client receives matched rows while SJ.Dec is still running.

Together with :mod:`repro.store.tables` this lets the two parties run in
separate processes (or machines) with nothing but byte strings between
them — the deployment model of the paper's system.  :mod:`repro.net`
carries these bytes over TCP.

Every decoder here treats its input as hostile: counts, sizes and header
fields are validated against the payload actually present *before* any
allocation or body read, and every failure — truncation, corruption,
type confusion — raises :class:`~repro.errors.SchemeError`.  Nothing
else may escape: the network service feeds these decoders bytes from
arbitrary remote peers.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.client import EncryptedChainQuery, EncryptedJoinQuery
from repro.core.engine import EngineReport
from repro.core.scheme import SJToken
from repro.core.server import (
    ChainMatchBatch,
    EncryptedChainResult,
    EncryptedJoinResult,
    MatchBatch,
    ServerStats,
)
from repro.plan import MAX_CHAIN_TABLES
from repro.shard.partition import MAX_SHARD_COUNT, validate_shard_layout
from repro.crypto.backend import BilinearBackend
from repro.errors import SchemeError
from repro.store.codec import (
    Reader,
    Writer,
    read_element_vector,
    read_header,
    write_element_vector,
    write_header,
)

_QUERY_MAGIC = b"RPROJQRY"
_CHAIN_QUERY_MAGIC = b"RPROJCQY"
_RESULT_MAGIC = b"RPROJRES"
_FRAME_MAGIC = b"RPROJFRM"
# Version 2: queries carry ``engine_hint``; result stats carry the
# execution-engine fields (engine, batches, workers, pairing op counts)
# plus — since the planner PR — ``engine_source`` / ``engine_selected``,
# the per-side ``planner`` records and the persistent-pool lifecycle
# counters.
# Version 3 (the streaming-pipeline PR): result stats additionally
# carry the matcher choice (``matcher``), the pipeline stage timings
# (``time_to_first_match`` / ``decrypt_seconds`` / ``match_seconds``)
# and the admission counter ``concurrent_sides``.
# Version 4 (the network-service PR): queries carry the optional QoS
# fields ``priority`` and ``deadline``, and the chunked result stream
# (stream-header / match-batch / final / error frames, magic
# ``RPROJFRM``) exists at all.  All header additions are optional JSON
# keys, so version-1..3 payloads still decode: missing fields take
# their defaults, unknown ones from newer minor revisions are ignored.
# Version 5 (the sharding PR): the scatter frames exist — shard-map
# (the coordinator's view of a partitioned deployment), scatter-chunk
# (one shard's decrypted handle events with *global* row indices and
# payloads) and scatter-final (per-side candidate counts and engine
# reports) — and result stats carry ``shards`` / ``shard_skew``.
# Version 6 (the query-series PR): result stats carry the cross-query
# cache counters ``series_cache_hits`` / ``delta_rows`` /
# ``reused_handles``.  Optional JSON keys again, so v1..v5 payloads
# still decode and v5 decoders ignore the new fields.
# Version 7 (the multi-way-plan PR): the chain query message exists
# (magic ``RPROJCQY`` — 2..8 tables, one token and optional pre-filter
# per position), the result stream grows the ``chain_batch`` /
# ``chain_final`` frame kinds carrying n-ary index tuples, and result
# stats carry ``plan_nodes`` / ``handle_pool_hits`` — optional JSON
# keys, so v1..v6 payloads still decode.
_VERSION = 7
_MIN_VERSION = 1
# Frames did not exist before v4, so their compatibility window starts
# there; chain queries arrived in v7.
_FRAME_MIN_VERSION = 4
_CHAIN_MIN_VERSION = 7
_TAG_SIZE = 32

#: Priority magnitude cap: wire-supplied priorities are clamped into a
#: sane range so a hostile header cannot smuggle unbounded integers
#: into the scheduler's comparisons.
MAX_PRIORITY_MAGNITUDE = 2**16

_STATS_FIELDS = {field.name for field in dataclasses.fields(ServerStats)}

#: Frame kind tags (the ``kind`` header field of ``RPROJFRM`` payloads).
FRAME_STREAM_HEADER = "stream_header"
FRAME_MATCH_BATCH = "match_batch"
FRAME_FINAL = "final"
FRAME_ERROR = "error"
FRAME_SHARD_MAP = "shard_map"
FRAME_SCATTER_CHUNK = "scatter_chunk"
FRAME_SCATTER_FINAL = "scatter_final"
FRAME_CHAIN_BATCH = "chain_batch"
FRAME_CHAIN_FINAL = "chain_final"

_REPORT_FIELDS = {field.name for field in dataclasses.fields(EngineReport)}

#: Longest accepted hex-encoded partitioner seed in a shard-map frame
#: (raw seed <= 64 bytes, mirroring the partitioner's own cap).
_MAX_SEED_HEX = 128


# -- header field validation ----------------------------------------------


def _require(header: dict, key: str):
    try:
        return header[key]
    except KeyError:
        raise SchemeError(
            f"header is missing required field {key!r}"
        ) from None


def _as_str(value, key: str) -> str:
    if not isinstance(value, str):
        raise SchemeError(
            f"header field {key!r} must be a string, got "
            f"{type(value).__name__}"
        )
    return value


def _as_int(value, key: str, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemeError(
            f"header field {key!r} must be an integer, got "
            f"{type(value).__name__}"
        )
    if minimum is not None and value < minimum:
        raise SchemeError(
            f"header field {key!r} must be >= {minimum}, got {value}"
        )
    return value


def _as_dict(value, key: str) -> dict:
    if not isinstance(value, dict):
        raise SchemeError(
            f"header field {key!r} must be an object, got "
            f"{type(value).__name__}"
        )
    return value


def _opt_str_list(value, key: str) -> list[str] | None:
    if value is None:
        return None
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise SchemeError(
            f"header field {key!r} must be null or a list of strings"
        )
    return value


def _qos_fields(header: dict) -> tuple[int, float | None]:
    """Validate the v4 ``priority`` / ``deadline`` header fields.

    Absent fields (v1..v3 payloads, or default-QoS v4 queries) take the
    neutral defaults.  ``deadline`` is *relative*: a per-query time
    budget in seconds, stamped against the receiving server's clock at
    admission — clients and servers need not agree on wall-clock time.
    """
    priority = header.get("priority", 0)
    if priority is not None:
        priority = _as_int(priority, "priority")
        if abs(priority) > MAX_PRIORITY_MAGNITUDE:
            raise SchemeError(
                f"priority {priority} outside "
                f"[-{MAX_PRIORITY_MAGNITUDE}, {MAX_PRIORITY_MAGNITUDE}]"
            )
    else:
        priority = 0
    deadline = header.get("deadline")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(
            deadline, (int, float)
        ):
            raise SchemeError(
                "header field 'deadline' must be null or a number of "
                f"seconds, got {type(deadline).__name__}"
            )
        deadline = float(deadline)
        if not math.isfinite(deadline) or deadline <= 0.0:
            raise SchemeError(
                f"deadline must be a positive finite number of seconds, "
                f"got {deadline}"
            )
    return priority, deadline


# -- join query ------------------------------------------------------------


def _write_prefilter(
    writer: Writer, prefilter: dict[str, frozenset[bytes]] | None
) -> list[str] | None:
    if prefilter is None:
        return None
    columns = sorted(prefilter)
    for column in columns:
        write_element_vector(writer, sorted(prefilter[column]), _TAG_SIZE)
    return columns


def encode_join_query(
    query: EncryptedJoinQuery, backend: BilinearBackend
) -> bytes:
    """Serialize the client's query message."""
    writer = Writer()
    body = Writer()
    for token in (query.left_token, query.right_token):
        write_element_vector(
            body,
            [backend.encode_g1(e) for e in token.elements],
            backend.g1_element_size,
        )
    left_columns = _write_prefilter(body, query.left_prefilter)
    right_columns = _write_prefilter(body, query.right_prefilter)
    header = {
        "query_id": query.query_id,
        "left_table": query.left_table,
        "right_table": query.right_table,
        "backend": backend.name,
        "g1_element_size": backend.g1_element_size,
        "left_prefilter_columns": left_columns,
        "right_prefilter_columns": right_columns,
        "engine_hint": query.engine_hint,
        "priority": query.priority,
        "deadline": query.deadline,
    }
    write_header(writer, _QUERY_MAGIC, _VERSION, header)
    writer.raw(body.getvalue())
    return writer.getvalue()


def decode_join_query(
    data: bytes, backend: BilinearBackend
) -> EncryptedJoinQuery:
    """Inverse of :func:`encode_join_query` (validating)."""
    reader = Reader(data)
    header = read_header(reader, _QUERY_MAGIC, _VERSION, _MIN_VERSION)
    header_backend = _as_str(_require(header, "backend"), "backend")
    if header_backend != backend.name:
        raise SchemeError(
            f"query was built for backend {header_backend!r}, "
            f"cannot decode with {backend.name!r}"
        )
    # The encoder wrote the element size its backend produced; a
    # mismatch means the two ends run differently parameterized
    # backends, and reading the token vectors with the local size would
    # fail with a misleading truncated-blob/trailing-bytes error deep in
    # the body (or worse, mis-slice into garbage elements).
    declared_size = _as_int(
        _require(header, "g1_element_size"), "g1_element_size", minimum=1
    )
    if declared_size != backend.g1_element_size:
        raise SchemeError(
            f"query tokens carry {declared_size}-byte G1 elements, but "
            f"backend {backend.name!r} uses "
            f"{backend.g1_element_size}-byte elements (mismatched backend "
            "parameterization)"
        )
    engine_hint = header.get("engine_hint")
    if engine_hint is not None and not isinstance(engine_hint, str):
        raise SchemeError(
            "header field 'engine_hint' must be null or a string"
        )
    priority, deadline = _qos_fields(header)
    tokens = []
    for _ in range(2):
        raw = read_element_vector(reader, backend.g1_element_size)
        tokens.append(SJToken(tuple(backend.decode_g1(e) for e in raw)))

    def read_prefilter(columns):
        if columns is None:
            return None
        return {
            column: frozenset(read_element_vector(reader, _TAG_SIZE))
            for column in columns
        }

    left_prefilter = read_prefilter(
        _opt_str_list(
            header.get("left_prefilter_columns"), "left_prefilter_columns"
        )
    )
    right_prefilter = read_prefilter(
        _opt_str_list(
            header.get("right_prefilter_columns"), "right_prefilter_columns"
        )
    )
    reader.expect_end()
    return EncryptedJoinQuery(
        query_id=_as_int(_require(header, "query_id"), "query_id"),
        left_table=_as_str(_require(header, "left_table"), "left_table"),
        right_table=_as_str(_require(header, "right_table"), "right_table"),
        left_token=tokens[0],
        right_token=tokens[1],
        left_prefilter=left_prefilter,
        right_prefilter=right_prefilter,
        engine_hint=engine_hint,
        priority=priority,
        deadline=deadline,
    )


# -- chain query (v7) ------------------------------------------------------


def encode_chain_query(
    query: EncryptedChainQuery, backend: BilinearBackend
) -> bytes:
    """Serialize a multi-way chain query (one token per position).

    Token bytes are preserved exactly, so positions that shared a token
    object on the client still share byte-identical tokens after a
    round trip — the identity the server's handle pool groups by.
    """
    writer = Writer()
    body = Writer()
    for token in query.tokens:
        write_element_vector(
            body,
            [backend.encode_g1(e) for e in token.elements],
            backend.g1_element_size,
        )
    prefilter_columns = [
        _write_prefilter(body, prefilter) for prefilter in query.prefilters
    ]
    header = {
        "query_id": query.query_id,
        "tables": list(query.tables),
        "backend": backend.name,
        "g1_element_size": backend.g1_element_size,
        "prefilter_columns": prefilter_columns,
        "engine_hint": query.engine_hint,
        "priority": query.priority,
        "deadline": query.deadline,
    }
    write_header(writer, _CHAIN_QUERY_MAGIC, _VERSION, header)
    writer.raw(body.getvalue())
    return writer.getvalue()


def is_chain_query(data: bytes) -> bool:
    """Cheap dispatch sniff: does this payload open with the chain magic?"""
    return data[: len(_CHAIN_QUERY_MAGIC)] == _CHAIN_QUERY_MAGIC


def _chain_tables(header: dict) -> list[str]:
    tables = _require(header, "tables")
    if not isinstance(tables, list) or not all(
        isinstance(name, str) for name in tables
    ):
        raise SchemeError("header field 'tables' must be a list of strings")
    if not 2 <= len(tables) <= MAX_CHAIN_TABLES:
        raise SchemeError(
            f"a chain query names 2..{MAX_CHAIN_TABLES} tables, got "
            f"{len(tables)}"
        )
    return tables


def decode_chain_query(
    data: bytes, backend: BilinearBackend
) -> EncryptedChainQuery:
    """Inverse of :func:`encode_chain_query` (validating)."""
    reader = Reader(data)
    header = read_header(
        reader, _CHAIN_QUERY_MAGIC, _VERSION, _CHAIN_MIN_VERSION
    )
    header_backend = _as_str(_require(header, "backend"), "backend")
    if header_backend != backend.name:
        raise SchemeError(
            f"query was built for backend {header_backend!r}, "
            f"cannot decode with {backend.name!r}"
        )
    declared_size = _as_int(
        _require(header, "g1_element_size"), "g1_element_size", minimum=1
    )
    if declared_size != backend.g1_element_size:
        raise SchemeError(
            f"query tokens carry {declared_size}-byte G1 elements, but "
            f"backend {backend.name!r} uses "
            f"{backend.g1_element_size}-byte elements (mismatched backend "
            "parameterization)"
        )
    tables = _chain_tables(header)
    engine_hint = header.get("engine_hint")
    if engine_hint is not None and not isinstance(engine_hint, str):
        raise SchemeError(
            "header field 'engine_hint' must be null or a string"
        )
    priority, deadline = _qos_fields(header)
    prefilter_columns = _require(header, "prefilter_columns")
    if not isinstance(prefilter_columns, list) or len(
        prefilter_columns
    ) != len(tables):
        raise SchemeError(
            "header field 'prefilter_columns' must list one entry per "
            "chain table"
        )
    tokens = []
    for _ in tables:
        raw = read_element_vector(reader, backend.g1_element_size)
        tokens.append(SJToken(tuple(backend.decode_g1(e) for e in raw)))
    prefilters = []
    for position, columns in enumerate(prefilter_columns):
        columns = _opt_str_list(columns, f"prefilter_columns[{position}]")
        if columns is None:
            prefilters.append(None)
        else:
            prefilters.append({
                column: frozenset(read_element_vector(reader, _TAG_SIZE))
                for column in columns
            })
    reader.expect_end()
    return EncryptedChainQuery(
        query_id=_as_int(_require(header, "query_id"), "query_id"),
        tables=tuple(tables),
        tokens=tuple(tokens),
        prefilters=tuple(prefilters),
        engine_hint=engine_hint,
        priority=priority,
        deadline=deadline,
    )


# -- join result (materialized) -------------------------------------------


def _stats_dict(stats: ServerStats) -> dict:
    return {
        "candidates_left": stats.candidates_left,
        "candidates_right": stats.candidates_right,
        "decryptions": stats.decryptions,
        "probes": stats.probes,
        "comparisons": stats.comparisons,
        "matches": stats.matches,
        "engine": stats.engine,
        "batches": stats.batches,
        "max_batch_size": stats.max_batch_size,
        "workers": stats.workers,
        "miller_loops": stats.miller_loops,
        "final_exponentiations": stats.final_exponentiations,
        "prepared_miller_loops": stats.prepared_miller_loops,
        "preparations": stats.preparations,
        "engine_source": stats.engine_source,
        "engine_selected": stats.engine_selected,
        "planner": stats.planner,
        "pool_generation": stats.pool_generation,
        "worker_restarts": stats.worker_restarts,
        "matcher": stats.matcher,
        "time_to_first_match": stats.time_to_first_match,
        "decrypt_seconds": stats.decrypt_seconds,
        "match_seconds": stats.match_seconds,
        "concurrent_sides": stats.concurrent_sides,
        "shards": stats.shards,
        "shard_skew": stats.shard_skew,
        "series_cache_hits": stats.series_cache_hits,
        "delta_rows": stats.delta_rows,
        "reused_handles": stats.reused_handles,
        "plan_nodes": stats.plan_nodes,
        "handle_pool_hits": stats.handle_pool_hits,
    }


def _decode_stats(header: dict) -> ServerStats:
    # Tolerant stats decode: absent fields (older payloads) default,
    # unknown fields (newer minor revisions) are dropped.
    stats = _as_dict(_require(header, "stats"), "stats")
    return ServerStats(**{
        key: value
        for key, value in stats.items()
        if key in _STATS_FIELDS
    })


def _read_pairs(reader: Reader, header: dict) -> list[tuple[int, int]]:
    """Read the ``n_pairs`` index pairs, validating the count up front.

    The count is header-supplied and therefore untrusted: a negative
    value must not silently yield an empty range, and an absurdly large
    one must fail *before* spinning through per-element reads.  Each
    pair is two u32s = 8 bytes, so ``remaining // 8`` bounds any count a
    well-formed body could satisfy.
    """
    n_pairs = _as_int(_require(header, "n_pairs"), "n_pairs", minimum=0)
    if n_pairs * 8 > reader.remaining:
        raise SchemeError(
            f"bad pair count {n_pairs}: {n_pairs} index pairs need "
            f"{n_pairs * 8} bytes, but only {reader.remaining} remain"
        )
    return [(reader.u32(), reader.u32()) for _ in range(n_pairs)]


def encode_join_result(result: EncryptedJoinResult) -> bytes:
    """Serialize the server's result message."""
    writer = Writer()
    header = {
        "left_table": result.left_table,
        "right_table": result.right_table,
        "n_pairs": len(result.index_pairs),
        "stats": _stats_dict(result.stats),
    }
    write_header(writer, _RESULT_MAGIC, _VERSION, header)
    for left_index, right_index in result.index_pairs:
        writer.u32(left_index)
        writer.u32(right_index)
    for payload in result.left_payloads:
        writer.blob(payload)
    for payload in result.right_payloads:
        writer.blob(payload)
    return writer.getvalue()


def decode_join_result(data: bytes) -> EncryptedJoinResult:
    """Inverse of :func:`encode_join_result` (validating)."""
    reader = Reader(data)
    header = read_header(reader, _RESULT_MAGIC, _VERSION, _MIN_VERSION)
    pairs = _read_pairs(reader, header)
    left_payloads = [reader.blob() for _ in range(len(pairs))]
    right_payloads = [reader.blob() for _ in range(len(pairs))]
    reader.expect_end()
    return EncryptedJoinResult(
        left_table=_as_str(_require(header, "left_table"), "left_table"),
        right_table=_as_str(_require(header, "right_table"), "right_table"),
        index_pairs=pairs,
        left_payloads=left_payloads,
        right_payloads=right_payloads,
        stats=_decode_stats(header),
    )


# -- result stream frames (v4) --------------------------------------------


@dataclasses.dataclass(frozen=True)
class StreamHeaderFrame:
    """Opens one result stream: identifies the query being answered."""

    query_id: int
    left_table: str
    right_table: str


@dataclasses.dataclass
class MatchBatchFrame:
    """One streamed increment: pairs (discovery order) plus payloads."""

    batch: MatchBatch


@dataclasses.dataclass
class FinalFrame:
    """Closes a stream: canonical pair order plus the server stats.

    Payload blobs already travelled in the match-batch frames;
    :class:`StreamReassembler` stitches them back into the canonical
    order this frame dictates.
    """

    left_table: str
    right_table: str
    index_pairs: list[tuple[int, int]]
    stats: ServerStats


@dataclasses.dataclass(frozen=True)
class ErrorFrame:
    """A server-side failure, reported in-stream instead of a final frame."""

    error_type: str
    message: str


def encode_stream_header(
    query_id: int, left_table: str, right_table: str
) -> bytes:
    writer = Writer()
    write_header(writer, _FRAME_MAGIC, _VERSION, {
        "kind": FRAME_STREAM_HEADER,
        "query_id": query_id,
        "left_table": left_table,
        "right_table": right_table,
    })
    return writer.getvalue()


def encode_match_batch(batch: MatchBatch) -> bytes:
    writer = Writer()
    write_header(writer, _FRAME_MAGIC, _VERSION, {
        "kind": FRAME_MATCH_BATCH,
        "n_pairs": len(batch.index_pairs),
    })
    for left_index, right_index in batch.index_pairs:
        writer.u32(left_index)
        writer.u32(right_index)
    for payload in batch.left_payloads:
        writer.blob(payload)
    for payload in batch.right_payloads:
        writer.blob(payload)
    return writer.getvalue()


def encode_final_frame(result: EncryptedJoinResult) -> bytes:
    """The stream's closing frame: canonical pairs + stats, no payloads."""
    writer = Writer()
    write_header(writer, _FRAME_MAGIC, _VERSION, {
        "kind": FRAME_FINAL,
        "left_table": result.left_table,
        "right_table": result.right_table,
        "n_pairs": len(result.index_pairs),
        "stats": _stats_dict(result.stats),
    })
    for left_index, right_index in result.index_pairs:
        writer.u32(left_index)
        writer.u32(right_index)
    return writer.getvalue()


def encode_error_frame(error_type: str, message: str) -> bytes:
    writer = Writer()
    write_header(writer, _FRAME_MAGIC, _VERSION, {
        "kind": FRAME_ERROR,
        "error_type": error_type,
        "message": message,
    })
    return writer.getvalue()


# -- scatter frames (v5) ---------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ShardMapFrame:
    """A partitioned deployment: layout plus per-shard endpoints.

    ``endpoints[i]`` is the ``(host, port)`` serving shard ``i``;
    ``tables`` names the sharded tables the layout covers.  The seed and
    count pin the partitioner, so a coordinator loading this map can
    verify a row's placement rather than trust it.
    """

    shard_count: int
    seed: bytes
    tables: tuple[str, ...]
    endpoints: tuple[tuple[str, int], ...]


@dataclasses.dataclass
class ScatterChunkFrame:
    """One shard's decrypt increment: global-index handle events.

    ``items`` holds ``(global_row_index, handle, payload)`` tuples for
    one side — exactly the event stream the coordinator's merged
    matcher consumes, so a remote shard is interchangeable with a local
    one.
    """

    side: str
    items: list[tuple[int, bytes, bytes]]


@dataclasses.dataclass
class ScatterFinalFrame:
    """Closes one shard's scatter: candidate counts + engine reports."""

    candidates_left: int
    candidates_right: int
    left_report: EngineReport | None = None
    right_report: EngineReport | None = None


def encode_shard_map(shard_map: ShardMapFrame) -> bytes:
    writer = Writer()
    write_header(writer, _FRAME_MAGIC, _VERSION, {
        "kind": FRAME_SHARD_MAP,
        "shard_count": shard_map.shard_count,
        "seed": shard_map.seed.hex(),
        "tables": list(shard_map.tables),
        "endpoints": [
            [host, port] for host, port in shard_map.endpoints
        ],
    })
    return writer.getvalue()


def encode_scatter_chunk(side: str, items: list) -> bytes:
    writer = Writer()
    write_header(writer, _FRAME_MAGIC, _VERSION, {
        "kind": FRAME_SCATTER_CHUNK,
        "side": side,
        "n_rows": len(items),
    })
    for row, handle, payload in items:
        writer.u32(row)
        writer.blob(handle)
        writer.blob(payload)
    return writer.getvalue()


def _report_dict(report: EngineReport | None) -> dict | None:
    if report is None:
        return None
    return dataclasses.asdict(report)


def encode_scatter_final(final: ScatterFinalFrame) -> bytes:
    writer = Writer()
    write_header(writer, _FRAME_MAGIC, _VERSION, {
        "kind": FRAME_SCATTER_FINAL,
        "candidates_left": final.candidates_left,
        "candidates_right": final.candidates_right,
        "reports": {
            "left": _report_dict(final.left_report),
            "right": _report_dict(final.right_report),
        },
    })
    return writer.getvalue()


def _decode_shard_map(header: dict) -> ShardMapFrame:
    shard_count = _as_int(
        _require(header, "shard_count"), "shard_count", minimum=1
    )
    if shard_count > MAX_SHARD_COUNT:
        raise SchemeError(
            f"shard count {shard_count} exceeds the cap {MAX_SHARD_COUNT}"
        )
    seed_hex = _as_str(_require(header, "seed"), "seed")
    if not seed_hex or len(seed_hex) > _MAX_SEED_HEX:
        raise SchemeError("shard-map seed must be a short non-empty hex string")
    try:
        seed = bytes.fromhex(seed_hex)
    except ValueError:
        raise SchemeError("shard-map seed is not valid hex") from None
    # A decodable seed must also be a *usable* one — same bounds the
    # partitioner enforces.
    validate_shard_layout(0, shard_count, seed)
    tables = header.get("tables", [])
    if not isinstance(tables, list) or not all(
        isinstance(name, str) for name in tables
    ):
        raise SchemeError("shard-map tables must be a list of strings")
    endpoints = _require(header, "endpoints")
    if not isinstance(endpoints, list) or len(endpoints) != shard_count:
        raise SchemeError(
            f"shard map must carry exactly {shard_count} endpoints"
        )
    decoded = []
    for endpoint in endpoints:
        if not isinstance(endpoint, list) or len(endpoint) != 2:
            raise SchemeError("each endpoint must be a [host, port] pair")
        host, port = endpoint
        _as_str(host, "endpoint host")
        _as_int(port, "endpoint port", minimum=0)
        if port > 65535:
            raise SchemeError(f"endpoint port {port} outside [0, 65535]")
        decoded.append((host, port))
    return ShardMapFrame(
        shard_count=shard_count,
        seed=seed,
        tables=tuple(tables),
        endpoints=tuple(decoded),
    )


def _decode_scatter_chunk(reader: Reader, header: dict) -> ScatterChunkFrame:
    side = _as_str(_require(header, "side"), "side")
    if side not in ("left", "right"):
        raise SchemeError(f"scatter chunk side must be left/right, got {side!r}")
    n_rows = _as_int(_require(header, "n_rows"), "n_rows", minimum=0)
    # Each row needs at least a u32 index plus two blob length prefixes
    # (12 bytes), so remaining//12 bounds any count a well-formed body
    # could satisfy — checked before any per-row allocation.
    if n_rows * 12 > reader.remaining:
        raise SchemeError(
            f"bad row count {n_rows}: {n_rows} scatter rows need at "
            f"least {n_rows * 12} bytes, but only {reader.remaining} remain"
        )
    items = [
        (reader.u32(), reader.blob(), reader.blob()) for _ in range(n_rows)
    ]
    reader.expect_end()
    return ScatterChunkFrame(side=side, items=items)


def _decode_report(value, key: str) -> EngineReport | None:
    if value is None:
        return None
    report = _as_dict(value, key)
    # Tolerant like the stats decode: absent fields default, unknown
    # ones are dropped — but ``planner`` must stay JSON-shaped.
    fields = {
        name: field_value
        for name, field_value in report.items()
        if name in _REPORT_FIELDS
    }
    planner = fields.get("planner")
    if planner is not None and not isinstance(planner, dict):
        raise SchemeError(
            "report field 'planner' must be null or an object"
        )
    try:
        return EngineReport(**fields)
    except TypeError:
        raise SchemeError(f"malformed engine report in {key!r}") from None


def _decode_scatter_final(header: dict) -> ScatterFinalFrame:
    reports = _as_dict(header.get("reports", {}), "reports")
    return ScatterFinalFrame(
        candidates_left=_as_int(
            _require(header, "candidates_left"), "candidates_left", minimum=0
        ),
        candidates_right=_as_int(
            _require(header, "candidates_right"),
            "candidates_right",
            minimum=0,
        ),
        left_report=_decode_report(reports.get("left"), "reports.left"),
        right_report=_decode_report(reports.get("right"), "reports.right"),
    )


# -- chain frames (v7) -----------------------------------------------------


@dataclasses.dataclass
class ChainBatchFrame:
    """One streamed chain increment: n-ary tuples plus their payloads."""

    batch: ChainMatchBatch


@dataclasses.dataclass
class ChainFinalFrame:
    """Closes a chain stream: canonical tuple order plus server stats."""

    tables: tuple[str, ...]
    tuples: list[tuple[int, ...]]
    stats: ServerStats


def encode_chain_batch(batch: ChainMatchBatch) -> bytes:
    if not batch.tuples:
        raise SchemeError("chain batch must carry at least one tuple")
    arity = len(batch.tuples[0])
    writer = Writer()
    write_header(writer, _FRAME_MAGIC, _VERSION, {
        "kind": FRAME_CHAIN_BATCH,
        "arity": arity,
        "n_tuples": len(batch.tuples),
    })
    for combo in batch.tuples:
        for row in combo:
            writer.u32(row)
    for payload_combo in batch.payloads:
        for payload in payload_combo:
            writer.blob(payload)
    return writer.getvalue()


def encode_chain_final(result: EncryptedChainResult) -> bytes:
    """The chain stream's closing frame: canonical tuples + stats."""
    writer = Writer()
    write_header(writer, _FRAME_MAGIC, _VERSION, {
        "kind": FRAME_CHAIN_FINAL,
        "tables": list(result.tables),
        "arity": len(result.tables),
        "n_tuples": len(result.tuples),
        "stats": _stats_dict(result.stats),
    })
    for combo in result.tuples:
        for row in combo:
            writer.u32(row)
    return writer.getvalue()


def _chain_arity(header: dict) -> int:
    arity = _as_int(_require(header, "arity"), "arity", minimum=2)
    if arity > MAX_CHAIN_TABLES:
        raise SchemeError(
            f"chain arity {arity} exceeds the cap {MAX_CHAIN_TABLES}"
        )
    return arity


def _read_tuples(
    reader: Reader, header: dict, arity: int, with_payloads: bool
) -> list[tuple[int, ...]]:
    """Read ``n_tuples`` n-ary index tuples, validating the count first.

    Each tuple needs ``arity`` u32 indices (4 bytes each) plus — in a
    batch frame — ``arity`` blob length prefixes (4 bytes each), so the
    per-tuple floor bounds any count a well-formed body could satisfy,
    checked before any allocation.
    """
    n_tuples = _as_int(_require(header, "n_tuples"), "n_tuples", minimum=0)
    per_tuple = arity * (8 if with_payloads else 4)
    if n_tuples * per_tuple > reader.remaining:
        raise SchemeError(
            f"bad tuple count {n_tuples}: {n_tuples} chain tuples need at "
            f"least {n_tuples * per_tuple} bytes, but only "
            f"{reader.remaining} remain"
        )
    return [
        tuple(reader.u32() for _ in range(arity)) for _ in range(n_tuples)
    ]


def _decode_chain_batch(reader: Reader, header: dict) -> ChainBatchFrame:
    arity = _chain_arity(header)
    tuples = _read_tuples(reader, header, arity, with_payloads=True)
    payloads = [
        tuple(reader.blob() for _ in range(arity)) for _ in tuples
    ]
    reader.expect_end()
    return ChainBatchFrame(ChainMatchBatch(tuples=tuples, payloads=payloads))


def _decode_chain_final(reader: Reader, header: dict) -> ChainFinalFrame:
    arity = _chain_arity(header)
    tables = _chain_tables(header)
    if len(tables) != arity:
        raise SchemeError(
            f"chain final frame names {len(tables)} tables but declares "
            f"arity {arity}"
        )
    tuples = _read_tuples(reader, header, arity, with_payloads=False)
    reader.expect_end()
    return ChainFinalFrame(
        tables=tuple(tables),
        tuples=tuples,
        stats=_decode_stats(header),
    )


def decode_frame(
    data: bytes,
) -> (
    StreamHeaderFrame
    | MatchBatchFrame
    | FinalFrame
    | ErrorFrame
    | ShardMapFrame
    | ScatterChunkFrame
    | ScatterFinalFrame
    | ChainBatchFrame
    | ChainFinalFrame
):
    """Decode one result-stream frame (validating, v4+ only)."""
    reader = Reader(data)
    header = read_header(
        reader, _FRAME_MAGIC, _VERSION, _FRAME_MIN_VERSION
    )
    kind = _as_str(_require(header, "kind"), "kind")
    if kind == FRAME_STREAM_HEADER:
        reader.expect_end()
        return StreamHeaderFrame(
            query_id=_as_int(_require(header, "query_id"), "query_id"),
            left_table=_as_str(
                _require(header, "left_table"), "left_table"
            ),
            right_table=_as_str(
                _require(header, "right_table"), "right_table"
            ),
        )
    if kind == FRAME_MATCH_BATCH:
        pairs = _read_pairs(reader, header)
        left_payloads = [reader.blob() for _ in range(len(pairs))]
        right_payloads = [reader.blob() for _ in range(len(pairs))]
        reader.expect_end()
        return MatchBatchFrame(MatchBatch(
            index_pairs=pairs,
            left_payloads=left_payloads,
            right_payloads=right_payloads,
        ))
    if kind == FRAME_FINAL:
        pairs = _read_pairs(reader, header)
        reader.expect_end()
        return FinalFrame(
            left_table=_as_str(
                _require(header, "left_table"), "left_table"
            ),
            right_table=_as_str(
                _require(header, "right_table"), "right_table"
            ),
            index_pairs=pairs,
            stats=_decode_stats(header),
        )
    if kind == FRAME_ERROR:
        reader.expect_end()
        return ErrorFrame(
            error_type=_as_str(
                _require(header, "error_type"), "error_type"
            ),
            message=_as_str(_require(header, "message"), "message"),
        )
    if kind == FRAME_SHARD_MAP:
        reader.expect_end()
        return _decode_shard_map(header)
    if kind == FRAME_SCATTER_CHUNK:
        return _decode_scatter_chunk(reader, header)
    if kind == FRAME_SCATTER_FINAL:
        reader.expect_end()
        return _decode_scatter_final(header)
    if kind == FRAME_CHAIN_BATCH:
        return _decode_chain_batch(reader, header)
    if kind == FRAME_CHAIN_FINAL:
        return _decode_chain_final(reader, header)
    raise SchemeError(f"unknown frame kind {kind!r}")


class StreamReassembler:
    """Rebuild the canonical :class:`EncryptedJoinResult` from a stream.

    Match-batch frames deliver pairs and payloads in discovery order;
    the final frame dictates the canonical pair order.  Feed each batch
    to :meth:`add_batch` and close with :meth:`finish` — the result is
    byte-identical (up to run-dependent stats) to what the in-process
    ``execute_join`` would have returned.
    """

    def __init__(self):
        self._payloads: dict[tuple[int, int], tuple[bytes, bytes]] = {}

    def add_batch(self, batch: MatchBatch) -> None:
        if not (
            len(batch.index_pairs)
            == len(batch.left_payloads)
            == len(batch.right_payloads)
        ):
            raise SchemeError("match batch with mismatched payload counts")
        for pair, left, right in zip(
            batch.index_pairs, batch.left_payloads, batch.right_payloads
        ):
            key = (pair[0], pair[1])
            if key in self._payloads:
                raise SchemeError(
                    f"stream delivered pair {key} more than once"
                )
            self._payloads[key] = (left, right)

    def finish(self, final: FinalFrame) -> EncryptedJoinResult:
        if len(final.index_pairs) != len(self._payloads):
            raise SchemeError(
                f"stream delivered {len(self._payloads)} pairs but the "
                f"final frame claims {len(final.index_pairs)}"
            )
        left_payloads = []
        right_payloads = []
        for pair in final.index_pairs:
            try:
                left, right = self._payloads[pair]
            except KeyError:
                raise SchemeError(
                    f"final frame names pair {pair} that no match batch "
                    "delivered"
                ) from None
            left_payloads.append(left)
            right_payloads.append(right)
        return EncryptedJoinResult(
            left_table=final.left_table,
            right_table=final.right_table,
            index_pairs=list(final.index_pairs),
            left_payloads=left_payloads,
            right_payloads=right_payloads,
            stats=final.stats,
        )


class ChainReassembler:
    """Rebuild the canonical :class:`EncryptedChainResult` from a stream.

    The chain counterpart of :class:`StreamReassembler`: chain-batch
    frames deliver tuples and payloads in discovery order, the chain
    final frame dictates the canonical lexicographic order — and every
    cross-check (duplicate tuple, count mismatch, unknown tuple,
    drifting arity) raises :class:`~repro.errors.SchemeError`.
    """

    def __init__(self):
        self._payloads: dict[tuple[int, ...], tuple[bytes, ...]] = {}
        self._arity: int | None = None

    def _check_arity(self, combo: tuple[int, ...]) -> None:
        if self._arity is None:
            self._arity = len(combo)
        elif len(combo) != self._arity:
            raise SchemeError(
                f"stream mixed chain arities {self._arity} and "
                f"{len(combo)}"
            )

    def add_batch(self, batch: ChainMatchBatch) -> None:
        if len(batch.tuples) != len(batch.payloads):
            raise SchemeError("chain batch with mismatched payload counts")
        for combo, payload_combo in zip(batch.tuples, batch.payloads):
            combo = tuple(combo)
            self._check_arity(combo)
            if len(payload_combo) != len(combo):
                raise SchemeError(
                    "chain batch payload arity differs from tuple arity"
                )
            if combo in self._payloads:
                raise SchemeError(
                    f"stream delivered chain tuple {combo} more than once"
                )
            self._payloads[combo] = tuple(payload_combo)

    def finish(self, final: ChainFinalFrame) -> EncryptedChainResult:
        if len(final.tuples) != len(self._payloads):
            raise SchemeError(
                f"stream delivered {len(self._payloads)} chain tuples but "
                f"the final frame claims {len(final.tuples)}"
            )
        payloads = []
        for combo in final.tuples:
            self._check_arity(tuple(combo))
            try:
                payloads.append(self._payloads[tuple(combo)])
            except KeyError:
                raise SchemeError(
                    f"final frame names chain tuple {tuple(combo)} that "
                    "no chain batch delivered"
                ) from None
        return EncryptedChainResult(
            tables=tuple(final.tables),
            tuples=[tuple(combo) for combo in final.tuples],
            payloads=payloads,
            stats=final.stats,
        )
